//! Criterion benchmarks for the architecture simulator components:
//! pattern matcher + packer throughput (Fig. 4), L1/L2 cycle models, and
//! full per-layer simulation (the engine behind Table 2 and Fig. 8).
//!
//! Also includes the **ablation** groups DESIGN.md calls out: packer window
//! count and psum banking, which quantify the design choices of §4.2.2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phi_accel::l1::L1Model;
use phi_accel::packer::{pack_rows, PackerConfig};
use phi_accel::{PhiConfig, PhiSimulator};
use phi_core::{decompose, CalibrationConfig, Calibrator, Decomposition, LayerPatterns};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::GemmShape;
use snn_workloads::{activation_profile, generate_clustered, DatasetId, ModelId};
use std::hint::black_box;

fn setup() -> (snn_core::SpikeMatrix, LayerPatterns, Decomposition) {
    let mut rng = StdRng::seed_from_u64(10);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
    let (calib, cluster) = generate_clustered(1024, 512, &profile, 16, &mut rng);
    let acts = cluster.sample(1024, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig { max_iters: 8, ..Default::default() })
        .calibrate(&calib, &mut rng);
    let decomp = decompose(&acts, &patterns);
    (acts, patterns, decomp)
}

fn bench_packer(c: &mut Criterion) {
    let (_, _, decomp) = setup();
    // Extract one partition's L2 rows as the packer input stream.
    let entries: Vec<(u32, Vec<(u8, bool)>)> = (0..decomp.rows())
        .filter_map(|r| {
            let e: Vec<(u8, bool)> =
                decomp.l2_tile(r, 0).map(|x| ((x.col % 16) as u8, x.value < 0)).collect();
            if e.is_empty() {
                None
            } else {
                Some((r as u32, e))
            }
        })
        .collect();

    let mut group = c.benchmark_group("packer_windows_ablation");
    for windows in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(windows), &windows, |b, &w| {
            let config = PackerConfig { windows: w, ..Default::default() };
            b.iter(|| {
                pack_rows(black_box(entries.iter().map(|(r, e)| (*r, e.as_slice()))), &config)
            })
        });
    }
    group.finish();
}

fn bench_l1_model(c: &mut Criterion) {
    let (_, _, decomp) = setup();
    let model = L1Model::new(16, 8);
    c.bench_function("l1_tile_cycles_1024_rows", |b| {
        b.iter(|| model.tile_cycles(black_box(&decomp), 0, 1024))
    });
}

fn bench_run_layer(c: &mut Criterion) {
    let (acts, patterns, _) = setup();
    let mut group = c.benchmark_group("simulate_layer_1024x512x256");
    group.sample_size(10);
    let shape = GemmShape::new(1024, 512, 256);
    group.bench_function("default", |b| {
        let sim = PhiSimulator::new(PhiConfig::default());
        b.iter(|| sim.run_layer(black_box(&acts), &patterns, shape, 1.0))
    });
    // Ablation: fewer psum banks force more packer flushes.
    group.bench_function("psum_banks_2", |b| {
        let sim = PhiSimulator::new(PhiConfig { psum_banks: 2, ..Default::default() });
        b.iter(|| sim.run_layer(black_box(&acts), &patterns, shape, 1.0))
    });
    group.finish();
}

fn bench_ablation_cycles(c: &mut Criterion) {
    // Not a speed benchmark per se: quantifies the modeled hardware cycles
    // across ablated configs so `cargo bench` output records the design
    // space (printed once per run).
    let (acts, patterns, _) = setup();
    let shape = GemmShape::new(1024, 512, 256);
    let configs: Vec<(&str, PhiConfig)> = vec![
        ("default", PhiConfig::default()),
        ("windows=1", PhiConfig { packer_windows: 1, ..Default::default() }),
        ("banks=2", PhiConfig { psum_banks: 2, ..Default::default() }),
        ("no_prefetch", PhiConfig { prefetch: false, ..Default::default() }),
        ("no_compress", PhiConfig { compress: false, ..Default::default() }),
        ("matcher_lanes=1", PhiConfig { matcher_lanes: 1, ..Default::default() }),
    ];
    for (name, config) in &configs {
        let sim = PhiSimulator::new(config.clone());
        let report = sim.run_layer(&acts, patterns_ref(&patterns), shape, 1.0);
        println!(
            "[ablation] {name:<16} cycles {:>12.0} dram {:>12.0} packs-occ {:.2}",
            report.cycles, report.breakdown.dram, report.pack_occupancy
        );
    }
    c.bench_function("ablation_noop", |b| b.iter(|| black_box(1)));
}

fn patterns_ref(p: &LayerPatterns) -> &LayerPatterns {
    p
}

criterion_group!(benches, bench_packer, bench_l1_model, bench_run_layer, bench_ablation_cycles);
criterion_main!(benches);
