//! Criterion benchmarks for the calibration stage (§3.2): Hamming k-means,
//! full per-layer calibration, and the matcher-side best-match query.
//!
//! These cover the offline cost side of Table 4 / Fig. 7c — how pattern
//! count and partition width scale calibration time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phi_core::{hamming_kmeans, CalibrationConfig, Calibrator, KmeansConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_workloads::{activation_profile, generate_clustered, DatasetId, ModelId};
use std::hint::black_box;

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming_kmeans");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<u64> = (0..4096).map(|_| rng.gen::<u64>() & 0xFFFF).collect();
    for q in [32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(2);
                hamming_kmeans(
                    black_box(&points),
                    16,
                    KmeansConfig { clusters: q, max_iters: 12 },
                    &mut r,
                )
            })
        });
    }
    group.finish();
}

fn bench_layer_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibrate_layer");
    group.sample_size(10);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
    let mut rng = StdRng::seed_from_u64(3);
    let (acts, _) = generate_clustered(1024, 576, &profile, 16, &mut rng);
    for k in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(4);
                Calibrator::new(CalibrationConfig { k, q: 128, max_iters: 8, ..Default::default() })
                    .calibrate(black_box(&acts), &mut r)
            })
        });
    }
    group.finish();
}

fn bench_best_match(c: &mut Criterion) {
    // The matcher's inner loop: one tile against q patterns.
    let mut rng = StdRng::seed_from_u64(5);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
    let (acts, _) = generate_clustered(512, 256, &profile, 16, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig::default()).calibrate(&acts, &mut rng);
    let tiles: Vec<u64> = (0..512).map(|r| acts.partition_tile(r, 3, 16)).collect();
    c.bench_function("pattern_best_match_512_tiles", |b| {
        b.iter(|| {
            let set = patterns.set(3);
            tiles.iter().filter(|&&t| set.best_match(black_box(t)).is_some()).count()
        })
    });
}

criterion_group!(benches, bench_kmeans, bench_layer_calibration, bench_best_match);
criterion_main!(benches);
