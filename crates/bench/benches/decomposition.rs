//! Criterion benchmarks for the Phi decomposition and the functional GEMM
//! paths — the online side of Table 4: dense spike GEMM (bit sparsity)
//! versus the decomposed PWP + L2 evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phi_core::{decompose, phi_matmul, CalibrationConfig, Calibrator, PwpTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::{Matrix, SpikeMatrix};
use snn_workloads::{activation_profile, generate_clustered, DatasetId, ModelId};
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose_1024x512");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
    let (calib, cluster) = generate_clustered(1024, 512, &profile, 16, &mut rng);
    let acts = cluster.sample(1024, &mut rng);
    for q in [32usize, 128] {
        let patterns = Calibrator::new(CalibrationConfig { q, max_iters: 8, ..Default::default() })
            .calibrate(&calib, &mut rng);
        group.bench_with_input(BenchmarkId::new("q", q), &q, |b, _| {
            b.iter(|| decompose(black_box(&acts), black_box(&patterns)))
        });
    }
    group.finish();
}

fn bench_gemm_paths(c: &mut Criterion) {
    // The Table 4 story in wall-clock form: the same product computed
    // densely (bit sparsity) vs through the decomposition (Phi).
    let mut group = c.benchmark_group("functional_gemm_512x256x64");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar10);
    let (calib, cluster) = generate_clustered(1024, 256, &profile, 16, &mut rng);
    let acts = cluster.sample(512, &mut rng);
    let weights = Matrix::random(256, 64, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig { max_iters: 8, ..Default::default() })
        .calibrate(&calib, &mut rng);
    let decomp = decompose(&acts, &patterns);
    let pwp = PwpTable::new(&patterns, &weights).expect("pwp");

    group.bench_function("bit_sparsity_gemm", |b| {
        b.iter(|| acts.spike_matmul(black_box(&weights)).expect("gemm"))
    });
    group.bench_function("phi_gemm", |b| {
        b.iter(|| phi_matmul(black_box(&decomp), &pwp, &weights).expect("gemm"))
    });
    group.bench_function("pwp_precompute", |b| {
        b.iter(|| PwpTable::new(black_box(&patterns), &weights).expect("pwp"))
    });
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let acts = SpikeMatrix::random(1024, 512, 0.1, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig { q: 64, max_iters: 8, ..Default::default() })
        .calibrate(&acts, &mut rng);
    let decomp = decompose(&acts, &patterns);
    c.bench_function("reconstruct_1024x512", |b| b.iter(|| black_box(&decomp).reconstruct()));
}

criterion_group!(benches, bench_decompose, bench_gemm_paths, bench_reconstruct);
criterion_main!(benches);
