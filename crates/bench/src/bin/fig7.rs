//! Figure 7: design space exploration on VGG16 / CIFAR100.
//!
//! * `a` — element/vector/total density vs K-tile size `k ∈ {4,8,16,32,64}`
//! * `b` — compute cycles (normalized to bit sparsity) vs `k`
//! * `c` — compute cycles and PWP memory access vs pattern count
//!   `q ∈ {8..512}` at `k = 16`
//! * `d` — normalized DRAM power and buffer area/power vs total buffer
//!   size `{120, 160, 240, 400, 720} KB`
//!
//! Run: `cargo run --release -p phi-bench --bin fig7 [a|b|c|d]`
//! (no argument runs all four).

use phi_accel::{EnergyModel, PhiConfig, PhiSimulator};
use phi_analysis::Table;
use phi_bench::{fmt, results_dir, ExperimentScale};
use phi_core::{decompose, CalibrationConfig, Calibrator, SparsityStats};
use phi_snn::pipeline::{run_phi_workload, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_workloads::{DatasetId, ModelId, Workload};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let scale = ExperimentScale::from_env();
    let workload = scale.workload(ModelId::Vgg16, DatasetId::Cifar100);
    match which.as_str() {
        "a" => fig7a(&scale, &workload),
        "b" => fig7b(&scale, &workload),
        "c" => fig7c(&scale, &workload),
        "d" => fig7d(&scale, &workload),
        _ => {
            fig7a(&scale, &workload);
            fig7b(&scale, &workload);
            fig7c(&scale, &workload);
            fig7d(&scale, &workload);
        }
    }
}

/// Decomposes the whole workload at pattern width `k` / count `q` and
/// returns merged stats.
fn stats_at(scale: &ExperimentScale, workload: &Workload, k: usize, q: usize) -> SparsityStats {
    let mut all = Vec::new();
    for (i, layer) in workload.layers.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let patterns = Calibrator::new(CalibrationConfig {
            k,
            q,
            max_iters: scale.kmeans_iters,
            ..Default::default()
        })
        .calibrate(&layer.calibration, &mut rng);
        all.push(decompose(&layer.activations, &patterns).stats());
    }
    SparsityStats::merge_all(all.iter())
}

fn fig7a(scale: &ExperimentScale, workload: &Workload) {
    let mut table = Table::new(
        "Fig 7a: density vs K tile size (VGG16/CIFAR100, q=128)",
        &["k", "element density", "vector density", "total density"],
    );
    for k in [4usize, 8, 16, 32, 64] {
        let s = stats_at(scale, workload, k, 128);
        table.row_owned(vec![
            k.to_string(),
            fmt(s.element_density(), 4),
            fmt(s.vector_density(), 4),
            fmt(s.total_density(), 4),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig7a.csv")).expect("write fig7a.csv");
    println!("paper shape: total density is minimized at k = 16, where element and vector densities are closest\n");
}

fn fig7b(scale: &ExperimentScale, workload: &Workload) {
    let mut table = Table::new(
        "Fig 7b: compute cycles vs K tile size (normalized to bit sparsity)",
        &["k", "bit cycles", "phi cycles", "optimal cycles"],
    );
    for k in [4usize, 8, 16, 32, 64] {
        let s = stats_at(scale, workload, k, 128);
        // Per-element cycle proxies on identical hardware width: bit
        // sparsity processes every '1', Phi processes L2 corrections plus
        // one PWP retrieval per assigned tile, the optimum only L2.
        let bit = s.bit_density();
        let phi = s.total_density() / bit;
        let optimal = s.element_density() / bit;
        table.row_owned(vec![k.to_string(), "1.000".to_owned(), fmt(phi, 3), fmt(optimal, 3)]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig7b.csv")).expect("write fig7b.csv");
    println!("paper shape: Phi cycles bottom out at k = 16 and approach optimal\n");
}

fn fig7c(scale: &ExperimentScale, workload: &Workload) {
    let mut table = Table::new(
        "Fig 7c: cycles and PWP memory access vs pattern count (k=16)",
        &["q", "phi cycles (norm.)", "optimal cycles (norm.)", "mem access (norm. weights)"],
    );
    let config = PhiConfig::default();
    for q in [8usize, 16, 32, 64, 128, 256, 512] {
        let s = stats_at(scale, workload, 16, q);
        let bit = s.bit_density();
        // Memory: PWP volume grows with q (q/k PWP rows per weight row).
        let mut pwp_bytes = 0.0;
        let mut weight_bytes = 0.0;
        let sim = PhiSimulator::new(config.clone());
        for (i, layer) in workload.layers.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(2000 + i as u64);
            let patterns = Calibrator::new(CalibrationConfig {
                q,
                max_iters: scale.kmeans_iters,
                ..Default::default()
            })
            .calibrate(&layer.calibration, &mut rng);
            let report =
                sim.run_layer(&layer.activations, &patterns, layer.spec.shape, layer.row_scale);
            pwp_bytes += report.traffic.pwp_prefetch;
            weight_bytes += report.traffic.weight_dense;
        }
        table.row_owned(vec![
            q.to_string(),
            fmt(s.total_density() / bit, 3),
            fmt(s.element_density() / bit, 3),
            fmt((pwp_bytes + weight_bytes) / weight_bytes, 2),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig7c.csv")).expect("write fig7c.csv");
    println!("paper shape: cycles converge toward optimal with more patterns while memory access grows; q = 128 balances both\n");
}

fn fig7d(scale: &ExperimentScale, workload: &Workload) {
    let mut table = Table::new(
        "Fig 7d: DRAM power and buffer area/power vs buffer size",
        &["buffer (KB)", "norm. dram power", "norm. buffer power", "norm. buffer area"],
    );
    let energy = EnergyModel::default();
    let mut results = Vec::new();
    for kb in [120usize, 160, 240, 400, 720] {
        let accel = PhiConfig::default().with_total_buffer_bytes(kb << 10);
        let pipeline = PipelineConfig {
            calibration: CalibrationConfig { max_iters: scale.kmeans_iters, ..Default::default() },
            accelerator: accel.clone(),
            ..Default::default()
        };
        let report = run_phi_workload(workload, &pipeline);
        let runtime = report.runtime_s(accel.frequency_hz);
        let dram_power = report.total_energy().dram_j / runtime;
        let buffer_power = energy.buffer_power_mw(accel.total_buffer_bytes());
        let buffer_area = energy.area(&accel).buffer;
        results.push((kb, dram_power, buffer_power, buffer_area));
    }
    let baseline = results.iter().find(|r| r.0 == 240).copied().unwrap_or(results[0]);
    for (kb, dram, bpow, barea) in &results {
        table.row_owned(vec![
            kb.to_string(),
            fmt(dram / baseline.1, 3),
            fmt(bpow / baseline.2, 3),
            fmt(barea / baseline.3, 3),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig7d.csv")).expect("write fig7d.csv");
    println!("paper shape: DRAM power falls then flattens with buffer size while buffer area/power grow; 240 KB balances them\n");
}
