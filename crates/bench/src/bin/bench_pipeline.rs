//! Measures the calibrate→decompose hot path and writes the numbers to
//! `BENCH_pipeline.json` at the repository root, so the speedup of the
//! weight-compressed parallel engine is tracked across PRs.
//!
//! Measured on the VGG-16 / CIFAR-10 workload at two pattern budgets:
//!
//! * `q = 128` (`CalibrationConfig::default()`) — the paper's headline
//!   configuration. Every partition of this workload holds fewer than 128
//!   distinct tiles, so the weighted engines resolve it through the
//!   distinct ≤ q fast path.
//! * `q = 32` — forces distinct > q in most partitions, so the weighted
//!   Lloyd *iteration* path is exercised and the clustering objective is
//!   nonzero (a real regression guard, not 0 == 0).
//!
//! Per configuration: full-workload calibration per engine (reference /
//! weighted / parallel, median wall-clock), plus byte-identity and
//! objective checks; and once overall, the full-workload decomposition
//! under the parallel row sweep and the full-workload *functional
//! execution* of those decompositions through the CPU execution backend
//! ([`phi_accel::CpuBackend`]) — the pure PWP sparse-matmul hot path a
//! serving request pays after decomposition, with zero simulator
//! bookkeeping.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_pipeline`
//! (`PHI_BENCH_RUNS` overrides the repetition count; default 5).

use phi_accel::{CpuBackend, ExecutionBackend, LayerWork, MetricsMode, ReadoutPlan};
use phi_bench::{bench_runs, median};
use phi_core::{
    decompose, total_distance, CalibrationConfig, CalibrationEngine, Calibrator, PwpTable,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::Matrix;
use snn_workloads::{DatasetId, ModelId, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn calibrate_workload(
    workload: &Workload,
    q: usize,
    engine: CalibrationEngine,
) -> Vec<phi_core::LayerPatterns> {
    let config = CalibrationConfig { q, engine, ..CalibrationConfig::default() };
    let calibrator = Calibrator::new(config);
    workload
        .layers
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let mut rng = StdRng::seed_from_u64(7u64.wrapping_add(i as u64));
            calibrator.calibrate(&layer.calibration, &mut rng)
        })
        .collect()
}

fn time_runs(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    median(
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect(),
    )
}

/// The summed clustering objective over every layer × partition, computed
/// on the calibration tiles: the quantity the engines must not regress.
fn workload_objective(workload: &Workload, patterns: &[phi_core::LayerPatterns]) -> u64 {
    let k = CalibrationConfig::default().k;
    workload
        .layers
        .iter()
        .zip(patterns)
        .map(|(layer, lp)| {
            (0..lp.num_partitions())
                .map(|part| {
                    let tiles: Vec<u64> = (0..layer.calibration.rows())
                        .map(|r| layer.calibration.partition_tile(r, part, k))
                        .filter(|&t| t != 0 && t & (t - 1) != 0)
                        .collect();
                    let centers: Vec<u64> =
                        lp.set(part).patterns().iter().map(|p| p.bits()).collect();
                    total_distance(&tiles, &centers)
                })
                .sum::<u64>()
        })
        .sum()
}

struct ConfigResult {
    q: usize,
    reference: Duration,
    weighted: Duration,
    parallel: Duration,
    byte_identical: bool,
    objective_reference: u64,
    objective_parallel: u64,
}

impl ConfigResult {
    fn speedup_weighted(&self) -> f64 {
        self.reference.as_secs_f64() / self.weighted.as_secs_f64()
    }

    fn speedup_parallel(&self) -> f64 {
        self.reference.as_secs_f64() / self.parallel.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            r#"{{
    "q": {q},
    "calibration_ms": {{
      "reference_unweighted": {ref_ms:.3},
      "weighted": {wgt_ms:.3},
      "parallel": {par_ms:.3}
    }},
    "speedup_vs_reference": {{ "weighted": {sw:.3}, "parallel": {sp:.3} }},
    "engines_byte_identical": {byte_identical},
    "objective": {{ "reference": {obj_ref}, "parallel": {obj_par} }}
  }}"#,
            q = self.q,
            ref_ms = self.reference.as_secs_f64() * 1e3,
            wgt_ms = self.weighted.as_secs_f64() * 1e3,
            par_ms = self.parallel.as_secs_f64() * 1e3,
            sw = self.speedup_weighted(),
            sp = self.speedup_parallel(),
            byte_identical = self.byte_identical,
            obj_ref = self.objective_reference,
            obj_par = self.objective_parallel,
        )
    }
}

fn measure_config(workload: &Workload, q: usize, runs: usize) -> ConfigResult {
    println!("timing calibration engines at q = {q} ({runs} runs each)...");
    let reference = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Reference));
    });
    let weighted = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Weighted));
    });
    let parallel = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Parallel));
    });

    // Correctness checks alongside the timings: single-threaded weighted is
    // byte-identical to the reference; parallel must not regress the
    // clustering objective (it is byte-identical too, so it cannot).
    let p_ref = calibrate_workload(workload, q, CalibrationEngine::Reference);
    let p_wgt = calibrate_workload(workload, q, CalibrationEngine::Weighted);
    let p_par = calibrate_workload(workload, q, CalibrationEngine::Parallel);
    let result = ConfigResult {
        q,
        reference,
        weighted,
        parallel,
        byte_identical: p_ref == p_wgt && p_wgt == p_par,
        objective_reference: workload_objective(workload, &p_ref),
        objective_parallel: workload_objective(workload, &p_par),
    };
    println!("  reference: {:?}", result.reference);
    println!("  weighted:  {:?}  ({:.2}x)", result.weighted, result.speedup_weighted());
    println!("  parallel:  {:?}  ({:.2}x)", result.parallel, result.speedup_parallel());
    println!(
        "  byte-identical: {}, objective: reference {} / parallel {}",
        result.byte_identical, result.objective_reference, result.objective_parallel
    );
    result
}

fn main() {
    let runs = bench_runs();
    println!("generating VGG-16 / CIFAR-10 workload...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let layers = workload.layers.len();
    let calibration_rows: usize = workload.layers.iter().map(|l| l.calibration.rows()).sum();

    let headline = measure_config(&workload, 128, runs);
    let iterated = measure_config(&workload, 32, runs);

    println!("timing decomposition (parallel row sweep)...");
    let p_par = calibrate_workload(&workload, 128, CalibrationEngine::Parallel);
    let decompose_time = time_runs(runs, || {
        for (layer, lp) in workload.layers.iter().zip(&p_par) {
            std::hint::black_box(decompose(&layer.activations, lp));
        }
    });
    println!("decomposition: {decompose_time:?}");

    // Functional execution through the CPU backend: every layer's
    // precomputed decomposition runs the rayon-parallel PWP sparse matmul
    // against deterministic per-layer weights — the post-decomposition
    // cost of an outputs-only serving request.
    println!("timing functional execution (CpuBackend PWP sparse matmul)...");
    let decomps: Vec<_> =
        workload.layers.iter().zip(&p_par).map(|(l, lp)| decompose(&l.activations, lp)).collect();
    let weights: Vec<Matrix> = workload
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut rng = StdRng::seed_from_u64(0xF00D ^ i as u64);
            Matrix::random(l.spec.shape.k, l.spec.shape.n, &mut rng)
        })
        .collect();
    let pwps: Vec<PwpTable> = p_par
        .iter()
        .zip(&weights)
        .map(|(lp, w)| PwpTable::new(lp, w).expect("weights match patterns"))
        .collect();
    let backend = CpuBackend;
    let cpu_execute_time = time_runs(runs, || {
        for (((layer, decomp), pwp), w) in
            workload.layers.iter().zip(&decomps).zip(&pwps).zip(&weights)
        {
            let work = LayerWork {
                decomp,
                shape: layer.spec.shape,
                row_scale: layer.row_scale,
                name: &layer.spec.name,
                readout: Some(ReadoutPlan { pwp, weights: w }),
            };
            let out = backend.run_layer(&work, MetricsMode::OutputsOnly);
            assert!(out.readout.is_some() && out.report.is_none());
            std::hint::black_box(out);
        }
    });
    println!("functional execution (cpu backend): {cpu_execute_time:?}");

    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{ "k": 16, "layers": {layers}, "calibration_rows": {calibration_rows} }},
  "runs": {runs},
  "threads": {threads},
  "headline_q128": {headline},
  "iterated_q32": {iterated},
  "decompose_ms": {dec_ms:.3},
  "cpu_execute_ms": {cpu_ms:.3}
}}
"#,
        threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        headline = headline.json(),
        iterated = iterated.json(),
        dec_ms = decompose_time.as_secs_f64() * 1e3,
        cpu_ms = cpu_execute_time.as_secs_f64() * 1e3,
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());

    for result in [&headline, &iterated] {
        assert!(
            result.byte_identical,
            "engines must produce byte-identical pattern sets (q = {})",
            result.q
        );
        assert_eq!(
            result.objective_parallel, result.objective_reference,
            "parallel engine must not change the clustering objective (q = {})",
            result.q
        );
    }
    // The q = 32 budget is chosen so most partitions exceed it in distinct
    // tiles: a zero objective would mean the iterated Lloyd path was never
    // exercised and the objective check above was vacuous.
    assert!(iterated.objective_reference > 0, "q = 32 run must exercise the iterated path");
}
