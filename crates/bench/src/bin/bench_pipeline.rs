//! Measures the calibrate→decompose hot path and writes the numbers to
//! `BENCH_pipeline.json` at the repository root, so the speedup of the
//! weight-compressed parallel engine is tracked across PRs.
//!
//! Measured on the VGG-16 / CIFAR-10 workload at two pattern budgets:
//!
//! * `q = 128` (`CalibrationConfig::default()`) — the paper's headline
//!   configuration. Every partition of this workload holds fewer than 128
//!   distinct tiles, so the weighted engines resolve it through the
//!   distinct ≤ q fast path.
//! * `q = 32` — forces distinct > q in most partitions, so the weighted
//!   Lloyd *iteration* path is exercised and the clustering objective is
//!   nonzero (a real regression guard, not 0 == 0).
//!
//! Per configuration: full-workload calibration per engine (reference /
//! weighted / parallel, min wall-clock), plus byte-identity and
//! objective checks; and once overall, the full-workload decomposition
//! under three matchers — the linear reference scan, the cold
//! popcount-bucketed [`phi_core::MatchIndex`] path, and the warm
//! [`phi_core::TileCache`]-memoized path — and the full-workload
//! *functional execution* of those decompositions through the CPU
//! execution backend ([`phi_accel::CpuBackend`]) — the pure PWP
//! sparse-matmul hot path a serving request pays after decomposition,
//! with zero simulator bookkeeping. A separate fused batch-64 execution
//! pair (per-row vs the product-sparsity batch executor, on the stacked
//! serving batches the runtime executor actually builds) carries the
//! reuse floor. All three decomposition paths are asserted bit-identical
//! before anything is written.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_pipeline`.
//! Environment knobs:
//!
//! * `PHI_BENCH_RUNS` — repetition count (default 5; fastest run reported).
//! * `PHI_TILE_CACHE` — per-layer tile-cache capacity for the warm track
//!   (0 disables the cache, which also skips the warm-speedup floor).
//! * `PHI_PIPELINE_MIN_WARM_SPEEDUP` — floor for warm (cached) vs cold
//!   (indexed, uncached) decomposition (default 1.25; 0 disables).
//! * `PHI_PIPELINE_MAX_COLD_RATIO` — ceiling for cold (indexed) vs the
//!   linear-reference decomposition time: both paths now answer exact
//!   tile hits with the same sorted-array binary search, so the gap is
//!   down to index bookkeeping (default 1.3; 0 disables).
//! * `PHI_PIPELINE_MIN_SIMD_SPEEDUP` — floor for the dispatched SIMD
//!   kernels vs forced-scalar on both the cold decomposition and the CPU
//!   execution tracks (default 1.1; 0 disables). Skipped automatically
//!   when dispatch resolves to scalar (`PHI_SIMD=scalar` or a host
//!   without AVX2/NEON).
//! * `PHI_PIPELINE_MIN_REUSE_SPEEDUP` — floor for the product-sparsity
//!   batch executor ([`phi_core::phi_matmul_batch_reuse`]) vs the per-row
//!   sweep on the *fused serving batches* track: 64 requests × 4 rows
//!   sampled from the workload's calibrated cluster model and stacked per
//!   layer, exactly what the serving executor hands the backend at batch
//!   64 (default 1.15; 0 disables). The two tracks are always asserted
//!   bit-identical first.
//! * `PHI_SIMD` — kernel dispatch override (see [`phi_core::simd`]); the
//!   recorded `simd_dispatch` field names the level every track above ran
//!   at.

use phi_accel::{CpuBackend, ExecutionBackend, LayerWork, MetricsMode, ReadoutPlan};
use phi_bench::{bench_runs, env_f64};
use phi_core::{
    decompose, decompose_cached, decompose_indexed, force_reuse, simd, total_distance,
    CalibrationConfig, CalibrationEngine, Calibrator, LayerMatchIndex, PwpTable, ReuseMode,
    ReuseStats, TileCache, TileCacheStats,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::{Matrix, SpikeMatrix};
use snn_workloads::{DatasetId, ModelId, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn calibrate_workload(
    workload: &Workload,
    q: usize,
    engine: CalibrationEngine,
) -> Vec<phi_core::LayerPatterns> {
    let config = CalibrationConfig { q, engine, ..CalibrationConfig::default() };
    let calibrator = Calibrator::new(config);
    workload
        .layers
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let mut rng = StdRng::seed_from_u64(7u64.wrapping_add(i as u64));
            calibrator.calibrate(&layer.calibration, &mut rng)
        })
        .collect()
}

/// Minimum, not median: the phases of this benchmark run minutes apart,
/// so slow background-load drift would skew their ratios. The fastest
/// repetition is the least-interfered estimate of each phase's true
/// cost and is the stablest basis for the floor checks.
fn time_runs(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap_or_default()
}

/// Times several variants round-robin — variant 0, 1, …, then variant 0
/// again — taking each variant's fastest repetition. Variants whose
/// *ratio* is floor-checked (warm vs cold, SIMD vs scalar) must sample
/// the same interference epochs, or background-load drift between two
/// separately-timed phases shows up as a phantom speedup or regression.
fn time_interleaved(runs: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut mins = vec![Duration::MAX; fs.len()];
    for _ in 0..runs {
        for (min, f) in mins.iter_mut().zip(fs.iter_mut()) {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            *min = (*min).min(elapsed);
        }
    }
    mins
}

/// The summed clustering objective over every layer × partition, computed
/// on the calibration tiles: the quantity the engines must not regress.
fn workload_objective(workload: &Workload, patterns: &[phi_core::LayerPatterns]) -> u64 {
    let k = CalibrationConfig::default().k;
    workload
        .layers
        .iter()
        .zip(patterns)
        .map(|(layer, lp)| {
            (0..lp.num_partitions())
                .map(|part| {
                    let tiles: Vec<u64> = (0..layer.calibration.rows())
                        .map(|r| layer.calibration.partition_tile(r, part, k))
                        .filter(|&t| t != 0 && t & (t - 1) != 0)
                        .collect();
                    let centers: Vec<u64> =
                        lp.set(part).patterns().iter().map(|p| p.bits()).collect();
                    total_distance(&tiles, &centers)
                })
                .sum::<u64>()
        })
        .sum()
}

struct ConfigResult {
    q: usize,
    reference: Duration,
    weighted: Duration,
    parallel: Duration,
    byte_identical: bool,
    objective_reference: u64,
    objective_parallel: u64,
}

impl ConfigResult {
    fn speedup_weighted(&self) -> f64 {
        self.reference.as_secs_f64() / self.weighted.as_secs_f64()
    }

    fn speedup_parallel(&self) -> f64 {
        self.reference.as_secs_f64() / self.parallel.as_secs_f64()
    }

    fn json(&self) -> String {
        format!(
            r#"{{
    "q": {q},
    "calibration_ms": {{
      "reference_unweighted": {ref_ms:.3},
      "weighted": {wgt_ms:.3},
      "parallel": {par_ms:.3}
    }},
    "speedup_vs_reference": {{ "weighted": {sw:.3}, "parallel": {sp:.3} }},
    "engines_byte_identical": {byte_identical},
    "objective": {{ "reference": {obj_ref}, "parallel": {obj_par} }}
  }}"#,
            q = self.q,
            ref_ms = self.reference.as_secs_f64() * 1e3,
            wgt_ms = self.weighted.as_secs_f64() * 1e3,
            par_ms = self.parallel.as_secs_f64() * 1e3,
            sw = self.speedup_weighted(),
            sp = self.speedup_parallel(),
            byte_identical = self.byte_identical,
            obj_ref = self.objective_reference,
            obj_par = self.objective_parallel,
        )
    }
}

fn measure_config(workload: &Workload, q: usize, runs: usize) -> ConfigResult {
    println!("timing calibration engines at q = {q} ({runs} runs each)...");
    let reference = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Reference));
    });
    let weighted = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Weighted));
    });
    let parallel = time_runs(runs, || {
        std::hint::black_box(calibrate_workload(workload, q, CalibrationEngine::Parallel));
    });

    // Correctness checks alongside the timings: single-threaded weighted is
    // byte-identical to the reference; parallel must not regress the
    // clustering objective (it is byte-identical too, so it cannot).
    let p_ref = calibrate_workload(workload, q, CalibrationEngine::Reference);
    let p_wgt = calibrate_workload(workload, q, CalibrationEngine::Weighted);
    let p_par = calibrate_workload(workload, q, CalibrationEngine::Parallel);
    let result = ConfigResult {
        q,
        reference,
        weighted,
        parallel,
        byte_identical: p_ref == p_wgt && p_wgt == p_par,
        objective_reference: workload_objective(workload, &p_ref),
        objective_parallel: workload_objective(workload, &p_par),
    };
    println!("  reference: {:?}", result.reference);
    println!("  weighted:  {:?}  ({:.2}x)", result.weighted, result.speedup_weighted());
    println!("  parallel:  {:?}  ({:.2}x)", result.parallel, result.speedup_parallel());
    println!(
        "  byte-identical: {}, objective: reference {} / parallel {}",
        result.byte_identical, result.objective_reference, result.objective_parallel
    );
    result
}

fn main() {
    let runs = bench_runs();
    println!("generating VGG-16 / CIFAR-10 workload...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let layers = workload.layers.len();
    let calibration_rows: usize = workload.layers.iter().map(|l| l.calibration.rows()).sum();

    let headline = measure_config(&workload, 128, runs);
    let iterated = measure_config(&workload, 32, runs);

    // The decomposition tracks: the linear reference matcher, cold =
    // every tile resolved through the popcount-bucketed match index (what
    // a first-ever batch pays), warm = tile decisions replayed from the
    // shared memo (what every later batch pays, spiking activations being
    // as repetitive as they are), and — when dispatch is non-scalar — the
    // cold track again under forced-scalar kernels. All four are timed
    // round-robin so the floor-checked ratios between them sample the
    // same background-load epochs.
    let p_par = calibrate_workload(&workload, 128, CalibrationEngine::Parallel);
    let indexes: Vec<LayerMatchIndex> = p_par.iter().map(LayerMatchIndex::new).collect();
    let cache_capacity = phi_runtime::default_tile_cache_capacity();
    let caches: Vec<TileCache> = p_par.iter().map(|_| TileCache::new(cache_capacity)).collect();
    let simd_level = simd::level();
    let scalar_ab = simd_level != simd::SimdLevel::Scalar;
    println!(
        "timing decomposition, interleaved (linear / indexed cold / cached warm, capacity \
         {cache_capacity}/layer{})...",
        if scalar_ab { " / cold at forced scalar" } else { "" }
    );
    let mut run_linear = || {
        for (layer, lp) in workload.layers.iter().zip(&p_par) {
            std::hint::black_box(decompose(&layer.activations, lp));
        }
    };
    let mut run_cold = || {
        for (layer, (lp, idx)) in workload.layers.iter().zip(p_par.iter().zip(&indexes)) {
            std::hint::black_box(decompose_indexed(&layer.activations, lp, idx));
        }
    };
    // time_interleaved's warm-up call doubles as the cache-filling pass;
    // the measured iterations then run against a hot cache.
    let mut run_warm = || {
        for (layer, ((lp, idx), cache)) in
            workload.layers.iter().zip(p_par.iter().zip(&indexes).zip(&caches))
        {
            std::hint::black_box(decompose_cached(&layer.activations, lp, idx, cache));
        }
    };
    let mut run_cold_scalar = || {
        let prev = simd::force(simd::SimdLevel::Scalar);
        for (layer, (lp, idx)) in workload.layers.iter().zip(p_par.iter().zip(&indexes)) {
            std::hint::black_box(decompose_indexed(&layer.activations, lp, idx));
        }
        simd::force(prev);
    };
    let mut variants: Vec<&mut dyn FnMut()> = vec![&mut run_linear, &mut run_cold, &mut run_warm];
    if scalar_ab {
        variants.push(&mut run_cold_scalar);
    }
    let times = time_interleaved(runs, &mut variants);
    let (decompose_time, cold_time, warm_time) = (times[0], times[1], times[2]);
    let scalar_cold = scalar_ab.then(|| times[3]);
    println!("decomposition (linear): {decompose_time:?}");
    println!("decomposition (indexed, cold): {cold_time:?}");
    let mut cache_stats = TileCacheStats::default();
    for cache in &caches {
        cache_stats.merge(&cache.stats());
    }
    println!(
        "decomposition (cached, warm): {warm_time:?} (hit rate {:.4}, {} entries, {} evictions)",
        cache_stats.hit_rate(),
        cache_stats.entries,
        cache_stats.evictions
    );
    let warm_speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64();
    println!("warm vs cold: {warm_speedup:.2}x");

    // Bit-identity across all three matcher paths, per layer, warm cache
    // included — the correctness invariant of the whole accelerator.
    let paths_identical = workload.layers.iter().zip(p_par.iter().zip(&indexes).zip(&caches)).all(
        |(layer, ((lp, idx), cache))| {
            let linear = decompose(&layer.activations, lp);
            linear == decompose_indexed(&layer.activations, lp, idx)
                && linear == decompose_cached(&layer.activations, lp, idx, cache)
        },
    );
    println!("linear == indexed == cached decompositions: {paths_identical}");

    // Functional execution through the CPU backend: every layer's
    // precomputed decomposition runs the rayon-parallel PWP sparse matmul
    // against deterministic per-layer weights — the post-decomposition
    // cost of an outputs-only serving request.
    println!("timing functional execution (CpuBackend PWP sparse matmul)...");
    let decomps: Vec<_> =
        workload.layers.iter().zip(&p_par).map(|(l, lp)| decompose(&l.activations, lp)).collect();
    let weights: Vec<Matrix> = workload
        .layers
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let mut rng = StdRng::seed_from_u64(0xF00D ^ i as u64);
            Matrix::random(l.spec.shape.k, l.spec.shape.n, &mut rng)
        })
        .collect();
    let pwps: Vec<PwpTable> = p_par
        .iter()
        .zip(&weights)
        .map(|(lp, w)| PwpTable::new(lp, w).expect("weights match patterns"))
        .collect();
    let backend = CpuBackend;

    // Fused serving batches for the product-sparsity A/B: 64 requests ×
    // 4 rows per layer, drawn from the workload's calibrated cluster
    // model and stacked per layer — the exact matrices the serving
    // executor hands the backend at batch 64, where cross-row
    // duplication lives.
    let requests = workload.sample_requests(64, 4, 0xBA7C4);
    let fused: Vec<_> = (0..layers)
        .map(|l| {
            let mats: Vec<&SpikeMatrix> = requests.iter().map(|r| &r[l]).collect();
            SpikeMatrix::vstack(&mats).expect("fused batch stacks")
        })
        .collect();
    let fused_decomps: Vec<_> =
        fused.iter().zip(&p_par).map(|(acts, lp)| decompose(acts, lp)).collect();

    // One full sweep of the given per-layer decompositions through the
    // CPU backend, outputs only.
    let sweep = |decomps: &[phi_core::Decomposition], expect_reuse: bool| {
        for (((layer, decomp), pwp), w) in
            workload.layers.iter().zip(decomps).zip(&pwps).zip(&weights)
        {
            let work = LayerWork {
                decomp,
                shape: layer.spec.shape,
                row_scale: layer.row_scale,
                name: &layer.spec.name,
                readout: Some(ReadoutPlan { pwp, weights: w }),
            };
            let out = backend.run_layer(&work, MetricsMode::OutputsOnly);
            assert!(out.readout.is_some() && out.report.is_none());
            if expect_reuse {
                assert!(out.reuse.is_some(), "reuse track must take the planned path");
            }
            std::hint::black_box(out);
        }
    };
    // Four execution tracks, interleaved: the full-workload per-row
    // sweep (reuse forced off — the SIMD A/B baseline), the fused
    // batch-64 sweep per-row and through the product-sparsity batch
    // executor (the reuse A/B pair), and — when dispatch is non-scalar —
    // the full-workload sweep under forced-scalar kernels.
    let mut run_execute = || {
        let prev = force_reuse(ReuseMode::Off);
        sweep(&decomps, false);
        force_reuse(prev);
    };
    let mut run_batch64 = || {
        let prev = force_reuse(ReuseMode::Off);
        sweep(&fused_decomps, false);
        force_reuse(prev);
    };
    let mut run_batch64_reuse = || {
        let prev = force_reuse(ReuseMode::Auto);
        sweep(&fused_decomps, true);
        force_reuse(prev);
    };
    let mut run_execute_scalar = || {
        let prev = force_reuse(ReuseMode::Off);
        let prev_simd = simd::force(simd::SimdLevel::Scalar);
        sweep(&decomps, false);
        simd::force(prev_simd);
        force_reuse(prev);
    };
    let mut variants: Vec<&mut dyn FnMut()> =
        vec![&mut run_execute, &mut run_batch64, &mut run_batch64_reuse];
    if scalar_ab {
        variants.push(&mut run_execute_scalar);
    }
    // The reuse-vs-per-row ratio gates an acceptance floor and both
    // sides swing several ms with slow-timescale machine noise; a handful
    // of extra repetitions (each tens of ms) makes the min-of-runs
    // estimate stable where the default count is not.
    let times = time_interleaved(runs.max(9), &mut variants);
    let cpu_execute_time = times[0];
    let cpu_batch64_time = times[1];
    let cpu_batch64_reuse_time = times[2];
    let scalar_execute = scalar_ab.then(|| times[3]);
    let reuse_speedup = cpu_batch64_time.as_secs_f64() / cpu_batch64_reuse_time.as_secs_f64();
    println!("functional execution (cpu backend, full workload, per-row): {cpu_execute_time:?}");
    println!("functional execution (cpu backend, fused batch-64, per-row): {cpu_batch64_time:?}");
    println!(
        "functional execution (cpu backend, fused batch-64, reuse): {cpu_batch64_reuse_time:?} \
         ({reuse_speedup:.2}x)"
    );

    // One checked pass per fused layer batch: the planned (reuse)
    // readouts must be bit-identical to the per-row sweep, and the
    // plans' deterministic counters are the recorded reuse rate.
    let checked_sweep = |reuse_stats: &mut ReuseStats, collect_stats: bool| {
        workload
            .layers
            .iter()
            .zip(&fused_decomps)
            .zip(&pwps)
            .zip(&weights)
            .map(|(((layer, decomp), pwp), w)| {
                let work = LayerWork {
                    decomp,
                    shape: layer.spec.shape,
                    row_scale: layer.row_scale,
                    name: &layer.spec.name,
                    readout: Some(ReadoutPlan { pwp, weights: w }),
                };
                let out = backend.run_layer(&work, MetricsMode::OutputsOnly);
                if collect_stats {
                    reuse_stats.merge(&out.reuse.expect("reuse track must take the planned path"));
                }
                out.readout
            })
            .collect()
    };
    let mut reuse_stats = ReuseStats::default();
    let prev = force_reuse(ReuseMode::Auto);
    let reuse_readouts: Vec<_> = checked_sweep(&mut reuse_stats, true);
    force_reuse(ReuseMode::Off);
    let perrow_readouts = checked_sweep(&mut reuse_stats, false);
    force_reuse(prev);
    let reuse_identical = reuse_readouts == perrow_readouts;
    println!(
        "reuse vs per-row: bit-identical {reuse_identical}, reuse rate {:.4} ({} of {} term \
         rows shared, {} L1 classes, {} products)",
        reuse_stats.reuse_rate(),
        reuse_stats.term_rows_total - reuse_stats.term_rows_computed,
        reuse_stats.term_rows_total,
        reuse_stats.l1_classes,
        reuse_stats.products
    );

    // SIMD A/B: re-run the cold decomposition and CPU execution tracks
    // with dispatch forced to scalar, assert bit-identity against the
    // dispatched results, and record the speedup (the scalar timings came
    // from the interleaved passes above).
    println!("simd dispatch: {simd_level}");
    let simd_ab = scalar_ab.then(|| {
        let scalar_cold = scalar_cold.expect("timed when dispatch is non-scalar");
        let scalar_execute = scalar_execute.expect("timed when dispatch is non-scalar");
        println!("checking forced-scalar bit-identity (decompose cold + cpu execute)...");
        // The A/B isolates the SIMD kernels: both sides run the per-row
        // sweep (reuse has its own bit-identity check above).
        let prev_reuse = force_reuse(ReuseMode::Off);
        let prev = simd::force(simd::SimdLevel::Scalar);
        let scalar_decomps: Vec<_> = workload
            .layers
            .iter()
            .zip(p_par.iter().zip(&indexes))
            .map(|(l, (lp, idx))| decompose_indexed(&l.activations, lp, idx))
            .collect();
        let scalar_readouts: Vec<_> = workload
            .layers
            .iter()
            .zip(&decomps)
            .zip(&pwps)
            .zip(&weights)
            .map(|(((layer, decomp), pwp), w)| {
                let work = LayerWork {
                    decomp,
                    shape: layer.spec.shape,
                    row_scale: layer.row_scale,
                    name: &layer.spec.name,
                    readout: Some(ReadoutPlan { pwp, weights: w }),
                };
                backend.run_layer(&work, MetricsMode::OutputsOnly).readout
            })
            .collect();
        simd::force(prev);
        // Bit-identity at both levels, on both tracks: the dispatched
        // decompositions (`decomps` ran under auto dispatch via the
        // linear matcher; re-derive the indexed ones) and the readouts.
        let simd_decomps: Vec<_> = workload
            .layers
            .iter()
            .zip(p_par.iter().zip(&indexes))
            .map(|(l, (lp, idx))| decompose_indexed(&l.activations, lp, idx))
            .collect();
        let simd_readouts: Vec<_> = workload
            .layers
            .iter()
            .zip(&decomps)
            .zip(&pwps)
            .zip(&weights)
            .map(|(((layer, decomp), pwp), w)| {
                let work = LayerWork {
                    decomp,
                    shape: layer.spec.shape,
                    row_scale: layer.row_scale,
                    name: &layer.spec.name,
                    readout: Some(ReadoutPlan { pwp, weights: w }),
                };
                backend.run_layer(&work, MetricsMode::OutputsOnly).readout
            })
            .collect();
        force_reuse(prev_reuse);
        let identical = scalar_decomps == simd_decomps && scalar_readouts == simd_readouts;
        let dec_speedup = scalar_cold.as_secs_f64() / cold_time.as_secs_f64();
        let exe_speedup = scalar_execute.as_secs_f64() / cpu_execute_time.as_secs_f64();
        println!(
            "scalar decompose cold: {scalar_cold:?} ({dec_speedup:.2}x), scalar cpu execute: \
             {scalar_execute:?} ({exe_speedup:.2}x), bit-identical: {identical}"
        );
        (scalar_cold, scalar_execute, dec_speedup, exe_speedup, identical)
    });

    let simd_json = match &simd_ab {
        Some((scalar_cold, scalar_execute, dec_speedup, exe_speedup, identical)) => format!(
            r#"{{
    "decompose_indexed_cold_ms": {sc:.3},
    "cpu_execute_ms": {se:.3},
    "speedup": {{ "decompose_cold": {sd:.3}, "cpu_execute": {sx:.3} }},
    "bit_identical": {identical}
  }}"#,
            sc = scalar_cold.as_secs_f64() * 1e3,
            se = scalar_execute.as_secs_f64() * 1e3,
            sd = dec_speedup,
            sx = exe_speedup,
        ),
        None => "null".to_string(),
    };

    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{ "k": 16, "layers": {layers}, "calibration_rows": {calibration_rows} }},
  "runs": {runs},
  "threads": {threads},
  "headline_q128": {headline},
  "iterated_q32": {iterated},
  "decompose_ms": {dec_ms:.3},
  "decompose_indexed_cold_ms": {cold_ms:.3},
  "decompose_cached_warm_ms": {warm_ms:.3},
  "decompose_warm_speedup": {warm_speedup:.3},
  "tile_cache": {{
    "capacity": {cache_capacity},
    "hits": {cache_hits},
    "misses": {cache_misses},
    "evictions": {cache_evictions},
    "entries": {cache_entries},
    "hit_rate": {cache_hit_rate:.6}
  }},
  "decompose_paths_bit_identical": {paths_identical},
  "cpu_execute_ms": {cpu_ms:.3},
  "cpu_execute_batch64_ms": {batch64_ms:.3},
  "cpu_execute_reuse_ms": {reuse_ms:.3},
  "reuse_speedup": {reuse_speedup:.3},
  "reuse_bit_identical": {reuse_identical},
  "reuse": {{
    "rows": {reuse_rows},
    "term_rows_total": {reuse_total},
    "term_rows_computed": {reuse_computed},
    "reuse_rate": {reuse_rate:.6},
    "l1_classes": {reuse_classes},
    "products": {reuse_products},
    "shared_partial_hits": {reuse_hits},
    "prefix_links": {reuse_prefix}
  }},
  "simd_dispatch": "{simd_level}",
  "simd_scalar": {simd_json}
}}
"#,
        threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        headline = headline.json(),
        iterated = iterated.json(),
        dec_ms = decompose_time.as_secs_f64() * 1e3,
        cold_ms = cold_time.as_secs_f64() * 1e3,
        warm_ms = warm_time.as_secs_f64() * 1e3,
        cache_hits = cache_stats.hits,
        cache_misses = cache_stats.misses,
        cache_evictions = cache_stats.evictions,
        cache_entries = cache_stats.entries,
        cache_hit_rate = cache_stats.hit_rate(),
        cpu_ms = cpu_execute_time.as_secs_f64() * 1e3,
        batch64_ms = cpu_batch64_time.as_secs_f64() * 1e3,
        reuse_ms = cpu_batch64_reuse_time.as_secs_f64() * 1e3,
        reuse_rows = reuse_stats.rows,
        reuse_total = reuse_stats.term_rows_total,
        reuse_computed = reuse_stats.term_rows_computed,
        reuse_rate = reuse_stats.reuse_rate(),
        reuse_classes = reuse_stats.l1_classes,
        reuse_products = reuse_stats.products,
        reuse_hits = reuse_stats.shared_partial_hits,
        reuse_prefix = reuse_stats.prefix_links,
    );

    // Assert before persisting, so a failed acceptance run can never
    // overwrite the checked-in numbers with its own.
    for result in [&headline, &iterated] {
        assert!(
            result.byte_identical,
            "engines must produce byte-identical pattern sets (q = {})",
            result.q
        );
        assert_eq!(
            result.objective_parallel, result.objective_reference,
            "parallel engine must not change the clustering objective (q = {})",
            result.q
        );
    }
    // The q = 32 budget is chosen so most partitions exceed it in distinct
    // tiles: a zero objective would mean the iterated Lloyd path was never
    // exercised and the objective check above was vacuous.
    assert!(iterated.objective_reference > 0, "q = 32 run must exercise the iterated path");
    assert!(paths_identical, "indexed and cached decompositions must equal the linear reference");
    // Wall-clock ratios on shared machines are noisy; CI smoke runs lower
    // the bars via the env knobs (0 disables).
    // The cold (indexed, uncached) path must stay within 1.3x of the
    // linear reference scan. Since the match index gained its own
    // sorted exact-match layer, both paths answer the dominant
    // distance-0 probes identically and cold measures ~1.05-1.1x linear
    // on the reference container; a large gap would mean the bucket
    // probe (the inexact fallback) regressed.
    let max_cold_ratio = env_f64("PHI_PIPELINE_MAX_COLD_RATIO", 1.3);
    if max_cold_ratio > 0.0 {
        let ratio = cold_time.as_secs_f64() / decompose_time.as_secs_f64();
        assert!(
            ratio <= max_cold_ratio,
            "indexed cold decompose ({cold_time:?}) must not be slower than {max_cold_ratio}x \
             the linear reference ({decompose_time:?}), got {ratio:.2}x"
        );
    }
    // The warm floor guards that the tile cache still pays for itself,
    // not a fixed historical ratio: the cold denominator gained the
    // exact-match binary search (and the per-partition repeat memo), so
    // the headroom a cache hit can recover shrank from ~2x to ~1.3-1.5x
    // structurally. 1.25 keeps noise margin while still failing if cache
    // probes ever cost more than they save.
    let min_warm_speedup = env_f64("PHI_PIPELINE_MIN_WARM_SPEEDUP", 1.25);
    if cache_capacity > 0 {
        assert!(
            warm_speedup >= min_warm_speedup,
            "warm cached decompose ({warm_time:?}) must be at least {min_warm_speedup}x faster \
             than cold ({cold_time:?}), got {warm_speedup:.2}x"
        );
    } else {
        println!("PHI_TILE_CACHE=0: warm-speedup floor skipped (cache disabled)");
    }
    // The product-sparsity pass must keep earning its keep: bit-identity
    // unconditionally, and the planned path at least
    // PHI_PIPELINE_MIN_REUSE_SPEEDUP times the per-row sweep on this
    // workload's fused batches.
    assert!(
        reuse_identical,
        "reuse-planned and per-row readouts must be bit-identical on every layer"
    );
    let min_reuse = env_f64("PHI_PIPELINE_MIN_REUSE_SPEEDUP", 1.15);
    if min_reuse > 0.0 {
        assert!(
            reuse_speedup >= min_reuse,
            "reuse execution on fused batch-64 ({cpu_batch64_reuse_time:?}) must be at least \
             {min_reuse}x faster than the per-row sweep ({cpu_batch64_time:?}), got \
             {reuse_speedup:.2}x"
        );
    }
    // The SIMD kernels must actually pay for their dispatch: dispatched
    // vs forced-scalar, on both tracks. Bit-identity is unconditional —
    // a vectorized kernel that disagrees with scalar is a bug at any
    // speed.
    match &simd_ab {
        Some((_, _, dec_speedup, exe_speedup, identical)) => {
            assert!(
                identical,
                "forced-scalar and dispatched ({simd_level}) runs must be bit-identical"
            );
            let min_simd = env_f64("PHI_PIPELINE_MIN_SIMD_SPEEDUP", 1.1);
            if min_simd > 0.0 {
                assert!(
                    *dec_speedup >= min_simd,
                    "SIMD ({simd_level}) cold decompose must be at least {min_simd}x the scalar \
                     path, got {dec_speedup:.2}x"
                );
                assert!(
                    *exe_speedup >= min_simd,
                    "SIMD ({simd_level}) cpu execute must be at least {min_simd}x the scalar \
                     path, got {exe_speedup:.2}x"
                );
            }
        }
        None => println!("simd dispatch is scalar: SIMD-speedup floor skipped"),
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json");
    std::fs::write(&path, json).expect("write BENCH_pipeline.json");
    println!("wrote {}", path.display());
}
