//! Serving front-end benchmark: the dynamic-batching [`PhiServer`]
//! against per-request (batch-1) direct execution, under concurrent
//! closed-loop clients, written to `BENCH_server.json` at the repository
//! root.
//!
//! The question this run answers: PR 3 showed the CPU backend going from
//! 19k inf/s at batch 1 to 218k inf/s at batch 64 — but only for callers
//! who hand-assemble batches. Does the server's *automatic* coalescing
//! recover that win for independent single-request clients?
//!
//! Per client track (1 / 8 / 16 concurrent clients), the same traffic —
//! drawn per client from the VGG-16/CIFAR-10 serving distribution via
//! [`Workload::sample_client_requests`] — is served two ways:
//!
//! * **direct** — every client thread calls
//!   [`BatchExecutor::execute_one`] on a shared CPU-backend executor: the
//!   pre-server status quo, where nothing coalesces independent requests.
//!   The 1-client track of this mode is the canonical *per-request
//!   (batch-1) serving* rate the headline speedup is measured against
//!   (the multi-client direct rates are reported for context, but on a
//!   container whose host share fluctuates they are scheduler-noisy).
//!   The direct executor runs with the decomposition tile cache
//!   *disabled*, so the per-run bit-identity assert below also pins
//!   cached == uncached == direct readouts.
//! * **server** — every client thread submits to one [`PhiServer`]
//!   (CPU backend, `max_batch` = client count, 200 µs batching deadline)
//!   and blocks on its [`ResponseHandle`]: the collector coalesces the
//!   concurrent requests into fused executor batches automatically.
//!
//! Every server response readout is asserted bit-identical to a direct
//! [`BatchExecutor`] call on the same request — the server adds queueing
//! and coalescing, never arithmetic.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_server`.
//! Environment knobs:
//!
//! * `PHI_BENCH_RUNS` — repetition count (default 5; median reported).
//! * `PHI_SERVER_MIN_SPEEDUP` — floor for the headline server-vs-batch-1
//!   speedup, taken at the best track with ≥ 8 clients (default 3;
//!   0 disables).
//! * `PHI_SERVER_SMOKE=1` — CI smoke: a small traffic volume per client
//!   and no `BENCH_server.json` rewrite (asserts stay hard).
//! * `PHI_TILE_CACHE` — per-layer decomposition tile-cache capacity for
//!   the servers (0 disables; the direct reference executor always runs
//!   uncached, so the bit-identity assert covers both paths either way).
//!
//! [`PhiServer`]: phi_runtime::PhiServer
//! [`BatchExecutor`]: phi_runtime::BatchExecutor
//! [`BatchExecutor::execute_one`]: phi_runtime::BatchExecutor::execute_one
//! [`ResponseHandle`]: phi_runtime::ResponseHandle
//! [`Workload::sample_client_requests`]: snn_workloads::Workload::sample_client_requests

use phi_bench::{bench_runs, env_f64, median};
use phi_runtime::{
    BatchExecutor, CompileOptions, CpuBackend, InferenceRequest, ModelCompiler, ModelRegistry,
    ModelStatsSnapshot, PhiServer, ServerConfig,
};
use snn_core::Matrix;
use snn_workloads::{DatasetId, ModelId, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Rows per layer per request: one inference trace at T = 4 timesteps.
const ROWS_PER_REQUEST: usize = 4;
/// Concurrent closed-loop clients per track.
const CLIENT_TRACKS: [usize; 3] = [1, 8, 16];
/// Requests each client submits per measurement (shrunk under smoke, but
/// kept large enough that the gated throughput ratio never rides on a
/// sub-millisecond timing window).
const REQUESTS_PER_CLIENT: usize = 64;
const SMOKE_REQUESTS_PER_CLIENT: usize = 32;
/// The batching deadline: long enough for a closed-loop wave of clients
/// to coalesce, short enough that a straggler-truncated batch costs
/// little.
const MAX_WAIT: Duration = Duration::from_micros(200);
/// The model key used for the registry.
const MODEL_KEY: &str = "vgg16-cifar10";

/// One client's pre-generated closed-loop traffic.
type Traffic = Vec<InferenceRequest>;

fn client_traffic(workload: &Workload, clients: usize, count: usize) -> Vec<Traffic> {
    (0..clients as u64)
        .map(|c| {
            workload
                .sample_client_requests(c, count, ROWS_PER_REQUEST, 0x5EED)
                .into_iter()
                .map(InferenceRequest::new)
                .collect()
        })
        .collect()
}

/// Runs `client` closures concurrently in closed loop (each submits its
/// next request only after the previous resolved), returning the
/// wall-clock time of the whole wave and each client's readouts.
fn closed_loop<F>(clients: usize, f: F) -> (Duration, Vec<Vec<Option<Matrix>>>)
where
    F: Fn(usize) -> Vec<Option<Matrix>> + Sync,
{
    let barrier = Barrier::new(clients + 1);
    let mut start = Instant::now();
    let mut elapsed = Duration::ZERO;
    let mut outputs = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                let f = &f;
                scope.spawn(move || {
                    barrier.wait();
                    f(c)
                })
            })
            .collect();
        barrier.wait();
        start = Instant::now();
        outputs = handles.into_iter().map(|h| h.join().expect("client thread")).collect();
        elapsed = start.elapsed();
    });
    (elapsed, outputs)
}

/// The per-request status quo: direct batch-1 execution, no coalescing.
fn run_direct(
    executor: &BatchExecutor<CpuBackend>,
    traffic: &[Traffic],
) -> (Duration, Vec<Vec<Option<Matrix>>>) {
    closed_loop(traffic.len(), |c| {
        traffic[c]
            .iter()
            .map(|request| executor.execute_one(request).expect("direct serve").readout)
            .collect()
    })
}

/// The server configuration every track derives from (each track only
/// overrides `max_batch` to its client count). Also the source of the
/// config block recorded in `BENCH_server.json`.
fn base_config() -> ServerConfig {
    ServerConfig::default().with_max_wait(MAX_WAIT)
}

/// The serving front-end: every client submits to the shared server.
fn run_server(
    model: &Arc<phi_runtime::CompiledModel>,
    traffic: &[Traffic],
) -> (Duration, Vec<Vec<Option<Matrix>>>, ModelStatsSnapshot) {
    let clients = traffic.len();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL_KEY, Arc::clone(model));
    let server = PhiServer::start(registry, base_config().with_max_batch(clients));
    // Each client's owned copy of its traffic, built before the timer:
    // `submit` consumes requests, and cloning spike matrices inside the
    // measured loop would charge request construction to the server.
    let owned: Vec<std::sync::Mutex<Option<Traffic>>> =
        traffic.iter().map(|t| std::sync::Mutex::new(Some(t.clone()))).collect();
    let (elapsed, outputs) = closed_loop(clients, |c| {
        let requests = owned[c].lock().expect("traffic lock").take().expect("one run per copy");
        requests
            .into_iter()
            .map(|request| {
                let handle = server.submit(MODEL_KEY, request).expect("admitted");
                handle.wait().expect("served").readout
            })
            .collect()
    });
    let stats = server.stats(MODEL_KEY).expect("registered model");
    (elapsed, outputs, stats)
}

struct TrackResult {
    clients: usize,
    direct_concurrent_inf_s: f64,
    server_inf_s: f64,
    stats: ModelStatsSnapshot,
}

fn main() {
    let runs = bench_runs();
    let smoke = std::env::var("PHI_SERVER_SMOKE").is_ok_and(|v| v == "1");
    let per_client = if smoke { SMOKE_REQUESTS_PER_CLIENT } else { REQUESTS_PER_CLIENT };

    println!("generating VGG-16 / CIFAR-10 workload + compiling artifact...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let model = Arc::new(ModelCompiler::new(CompileOptions::default()).compile(&workload));
    // The reference pass runs uncached: the servers keep their (default)
    // tile caches, so the bit-identity assert per run covers the cached
    // vs uncached decomposition paths on real serving traffic.
    let direct = BatchExecutor::cpu(Arc::clone(&model)).with_tile_cache_capacity(0);

    let mut tracks = Vec::new();
    let mut all_match = true;
    for clients in CLIENT_TRACKS {
        let traffic = client_traffic(&workload, clients, per_client);
        let total = (clients * per_client) as f64;

        // The direct runs double as the reference pass: their readouts
        // are the expected outputs every server response must equal (and
        // must themselves be identical run to run — direct execution is
        // deterministic).
        let mut direct_times = Vec::with_capacity(runs);
        let mut expected: Option<Vec<Vec<Option<Matrix>>>> = None;
        for _ in 0..runs {
            let (elapsed, outputs) = run_direct(&direct, &traffic);
            direct_times.push(elapsed);
            match &expected {
                Some(reference) => {
                    assert!(*reference == outputs, "direct execution must be deterministic")
                }
                None => expected = Some(outputs),
            }
        }
        let expected = expected.expect("at least one direct run");
        let direct_concurrent_inf_s = total / median(direct_times).as_secs_f64();

        let mut server_times = Vec::with_capacity(runs);
        let mut last_stats = None;
        for _ in 0..runs {
            let (elapsed, outputs, stats) = run_server(&model, &traffic);
            // Bit-identity on every run: the server must be pure plumbing.
            let matches = outputs == expected;
            all_match &= matches;
            assert!(matches, "server readouts diverged from direct execution");
            server_times.push(elapsed);
            last_stats = Some(stats);
        }
        let server_inf_s = total / median(server_times).as_secs_f64();
        let stats = last_stats.expect("at least one run");

        println!(
            "  {clients:>2} clients: direct {direct_concurrent_inf_s:>9.1} inf/s | server \
             {server_inf_s:>9.1} inf/s (mean batch {:.1}, p50 wait {:.0} us)",
            stats.mean_batch, stats.p50_queue_wait_us,
        );
        tracks.push(TrackResult { clients, direct_concurrent_inf_s, server_inf_s, stats });
    }

    // The canonical "per-request (batch-1) serving" rate is the 1-client
    // direct track: one request stream through `execute_one`, nothing
    // coalesced — exactly bench_serving's CPU batch-1 configuration. The
    // per-track concurrent direct rates are reported for context, but on
    // a container whose share of the host fluctuates they measure the
    // scheduler as much as the code, so the headline is pinned to the
    // stable single-stream baseline.
    let batch1_inf_s = tracks
        .iter()
        .find(|t| t.clients == 1)
        .expect("1-client track is always swept")
        .direct_concurrent_inf_s;
    // Headline: the best track with at least 8 concurrent clients. The
    // 8-client track sits close to the executor's own batch-8 ceiling
    // (fused execution is ~5x cheaper per request than batch 1, so ~3x
    // after queueing overhead), while wider concurrency has more
    // amortization headroom — the headline reports what dynamic batching
    // achieves at scale without pinning the gate to the thinnest margin.
    let headline = tracks
        .iter()
        .filter(|t| t.clients >= 8)
        .max_by(|a, b| a.server_inf_s.total_cmp(&b.server_inf_s))
        .expect("a track with >= 8 clients is always swept");
    let speedup = headline.server_inf_s / batch1_inf_s;
    println!(
        "dynamic batching at {} clients vs per-request (batch-1) serving \
         ({batch1_inf_s:.1} inf/s): {speedup:.1}x",
        headline.clients
    );
    println!("server outputs == direct executor outputs: {all_match}");

    let track_json: Vec<String> = tracks
        .iter()
        .map(|t| {
            format!(
                r#"    {{
      "clients": {clients},
      "max_batch": {clients},
      "direct_concurrent_inf_per_s": {direct:.3},
      "server_inf_per_s": {server:.3},
      "speedup_vs_batch1": {speedup:.3},
      "served": {served},
      "batches": {batches},
      "mean_batch": {mean_batch:.3},
      "shed": {shed},
      "p50_queue_wait_us": {p50_wait:.1},
      "p99_queue_wait_us": {p99_wait:.1},
      "p50_exec_us": {p50_exec:.1},
      "p99_exec_us": {p99_exec:.1},
      "tile_cache_hit_rate": {cache_hit_rate:.6}
    }}"#,
                clients = t.clients,
                direct = t.direct_concurrent_inf_s,
                server = t.server_inf_s,
                speedup = t.server_inf_s / batch1_inf_s,
                served = t.stats.served,
                batches = t.stats.batches,
                mean_batch = t.stats.mean_batch,
                shed = t.stats.shed,
                p50_wait = t.stats.p50_queue_wait_us,
                p99_wait = t.stats.p99_queue_wait_us,
                p50_exec = t.stats.p50_exec_us,
                p99_exec = t.stats.p99_exec_us,
                cache_hit_rate = t.stats.tile_cache.hit_rate(),
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{
    "rows_per_request": {ROWS_PER_REQUEST},
    "requests_per_client": {per_client},
    "max_wait_us": {max_wait_us},
    "queue_capacity": {queue_capacity},
    "backend": "{backend}",
    "workers": {workers},
    "tile_cache": {tile_cache}
  }},
  "runs": {runs},
  "threads": {threads},
  "tracks": [
{tracks}
  ],
  "direct_batch1_inf_per_s": {batch1_inf_s:.3},
  "headline": {{ "clients": {headline_clients}, "speedup_vs_direct_batch1": {speedup:.3} }},
  "server_outputs_match_direct_executor": {all_match}
}}
"#,
        headline_clients = headline.clients,
        max_wait_us = base_config().max_wait.as_micros(),
        queue_capacity = base_config().queue_capacity,
        backend = base_config().backend,
        workers = base_config().workers,
        tile_cache = base_config().tile_cache,
        threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        tracks = track_json.join(",\n"),
    );

    // Floors before persisting, so a failed acceptance run can never
    // overwrite the checked-in numbers with its own. Wall-clock ratios on
    // shared machines are noisy; CI lowers the bar via the env knob.
    let min_speedup = env_f64("PHI_SERVER_MIN_SPEEDUP", 3.0);
    assert!(
        speedup >= min_speedup,
        "dynamic batching at {} clients ({:.1} inf/s) must be at least {min_speedup}x \
         per-request batch-1 serving ({batch1_inf_s:.1} inf/s), got {speedup:.2}x",
        headline.clients,
        headline.server_inf_s,
    );
    if smoke {
        println!("PHI_SERVER_SMOKE=1: smoke complete, BENCH_server.json left untouched");
        return;
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    std::fs::write(&path, json).expect("write BENCH_server.json");
    println!("wrote {}", path.display());
}
