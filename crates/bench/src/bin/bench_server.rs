//! Serving front-end benchmark: the dynamic-batching [`PhiServer`]
//! against per-request (batch-1) direct execution, under concurrent
//! closed-loop clients **and** an open-loop Poisson load generator,
//! written to `BENCH_server.json` at the repository root.
//!
//! The question this run answers: PR 3 showed the CPU backend going from
//! 19k inf/s at batch 1 to 218k inf/s at batch 64 — but only for callers
//! who hand-assemble batches. Does the server's *automatic* coalescing
//! recover that win for independent single-request clients, and does the
//! architecture hold up under the traffic shapes that closed-loop
//! clients cannot produce?
//!
//! Per client track (1 / 8 / 16 concurrent clients), the same traffic —
//! drawn per client from the VGG-16/CIFAR-10 serving distribution via
//! [`Workload::sample_client_requests`] — is served two ways:
//!
//! * **direct** — every client thread calls
//!   [`BatchExecutor::execute_one`] on a shared CPU-backend executor: the
//!   pre-server status quo, where nothing coalesces independent requests.
//!   The 1-client track of this mode is the canonical *per-request
//!   (batch-1) serving* rate the headline speedup is measured against
//!   (the multi-client direct rates are reported for context, but on a
//!   container whose host share fluctuates they are scheduler-noisy).
//!   The direct executor runs with the decomposition tile cache
//!   *disabled*, so the per-run bit-identity assert below also pins
//!   cached == uncached == direct readouts.
//! * **server** — every client thread submits to one [`PhiServer`]
//!   (CPU backend, `max_batch` = client count, 200 µs batching deadline)
//!   and blocks on its [`ResponseHandle`]: the collector coalesces the
//!   concurrent requests into fused executor batches automatically.
//!
//! On top of the closed-loop sweep, the run measures the scaling knobs
//! PR 7 added to the server:
//!
//! * **intake head-to-head** — the 16-client closed-loop track served by
//!   the single-mutex intake ([`IntakeMode::Mutex`]) vs the sharded
//!   intake ([`IntakeMode::Sharded`]), same traffic, same config
//!   otherwise.
//! * **multi-worker** — the 16-client track at `workers = 1` vs
//!   `workers = N` (the core count, or `PHI_SERVER_WORKERS`). On a
//!   multi-core host the multi-worker rate must beat the single-worker
//!   rate by `PHI_SERVER_MIN_WORKER_SPEEDUP` (default 1.5; 0 disables);
//!   on a single-core host the comparison still runs (scaling past the
//!   core count cannot help, but must not corrupt) and the floor is
//!   skipped.
//! * **cache modes** — [`TileCacheMode::Shared`] vs
//!   [`TileCacheMode::PerWorker`] at `workers ≥ 2`, reporting throughput
//!   and the per-shard tile-cache hit rates.
//! * **open loop** — a deterministic seeded Poisson arrival schedule
//!   ([`ArrivalSchedule::poisson`]) replayed at offered loads of 0.5×,
//!   0.8×, 0.95×, and 1.1× the measured closed-loop capacity. Closed-loop
//!   clients self-throttle and hide queueing collapse; the open-loop
//!   tracks report achieved-vs-offered throughput, p50/p99/p999 total
//!   latency (charged from the *scheduled* arrival instant, so submitter
//!   slip counts against the server — no coordinated omission), and the
//!   shed rate near saturation.
//!
//! PR 9 adds a **streaming** section: N persistent sessions (opened via
//! [`PhiServer::open_session`]) each drive a closed loop of `T`
//! temporally-correlated 64-row frames through
//! [`PhiServer::submit_stream`] — frame `t+1` is frame `t` with each row
//! resampled at probability δ, swept at δ ∈ {0, 0.1, 0.5}. The server
//! keeps each session's frames in timestep order while coalescing across
//! sessions, and the executor decomposes each frame *incrementally*
//! against the session's previous frame. The same traffic is then served
//! through the stateless `submit` path (full re-decomposition of every
//! frame) as the baseline, interleaved run by run with the incremental
//! measurements (back-to-back pairs keep the ratio honest when the
//! container's host share drifts); at δ = 0.1 the median per-pair ratio
//! must be at least `PHI_SERVER_MIN_STREAM_SPEEDUP`×. Both streaming servers
//! run with the tile cache disabled so the baseline is genuinely
//! uncached re-decomposition rather than cache warmth (the cache is an
//! orthogonal mechanism with its own tracks above). Every streamed readout
//! is asserted bit-identical to direct stateless execution — incremental
//! decomposition changes cost, never bits.
//!
//! PR 10 adds a **drift** track exercising the live model lifecycle:
//! serving traffic shifts to a drifted distribution
//! ([`Workload::drifted`]) and throughput collapses (the calibrated
//! patterns stop matching), the background recalibrator is nudged
//! ([`PhiServer::request_recalibration`]), recompiles from a reservoir of
//! served requests, shadow-executes the candidate on live traffic, and
//! hot-swaps it in — after which throughput on the drifted traffic must
//! recover to within `PHI_SERVER_MIN_DRIFT_RECOVERY` of the pre-drift
//! baseline. A rival artifact with different weights is then proposed
//! under a bit-identity tolerance and must roll back without shedding or
//! disturbing a single live request. Setting `PHI_LIFECYCLE=off` skips
//! the track (that run instead smoke-checks the static-registry path).
//!
//! Every server response readout — closed- and open-loop and streamed —
//! is asserted bit-identical to a direct [`BatchExecutor`] call on the
//! same request, on every run: the server adds queueing and coalescing,
//! never arithmetic. Across the drift track's hot swap each response is
//! bit-identical to direct execution on the version that admitted it.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_server`.
//! Environment knobs:
//!
//! * `PHI_BENCH_RUNS` — repetition count (default 5; median reported).
//! * `PHI_SERVER_MIN_SPEEDUP` — floor for the headline server-vs-batch-1
//!   speedup, taken at the best track with ≥ 8 clients (default 3;
//!   0 disables).
//! * `PHI_SERVER_MIN_WORKER_SPEEDUP` — floor for the multi-worker vs
//!   1-worker throughput ratio, enforced only on multi-core hosts
//!   (default 1.5; 0 disables).
//! * `PHI_SERVER_WORKERS` — worker count of the multi-worker and
//!   cache-mode comparisons (default: the core count, floored at 2).
//! * `PHI_SERVER_MIN_STREAM_SPEEDUP` — floor for the incremental-vs-full
//!   streaming throughput ratio at δ = 0.1 (default 1.2; 0 disables).
//! * `PHI_SERVER_MIN_DRIFT_RECOVERY` — floor for the post-recalibration
//!   vs pre-drift throughput ratio on the drift track (default 0.9;
//!   0 disables; skipped under smoke, where the track's correctness
//!   asserts stay hard but wall-clock ratios are too noisy to gate).
//! * `PHI_LIFECYCLE=off` — skip the drift track and run everything else
//!   against the default static registry (the lifecycle-disabled path CI
//!   smokes).
//! * `PHI_SERVER_SMOKE=1` — CI smoke: a small traffic volume per client,
//!   2 streaming sessions, and no `BENCH_server.json` rewrite (asserts
//!   stay hard).
//! * `PHI_TILE_CACHE` — per-layer decomposition tile-cache capacity for
//!   the servers (0 disables; the direct reference executor always runs
//!   uncached, so the bit-identity assert covers both paths either way).
//!
//! [`PhiServer`]: phi_runtime::PhiServer
//! [`PhiServer::open_session`]: phi_runtime::PhiServer::open_session
//! [`PhiServer::submit_stream`]: phi_runtime::PhiServer::submit_stream
//! [`BatchExecutor`]: phi_runtime::BatchExecutor
//! [`BatchExecutor::execute_one`]: phi_runtime::BatchExecutor::execute_one
//! [`ResponseHandle`]: phi_runtime::ResponseHandle
//! [`IntakeMode::Mutex`]: phi_runtime::IntakeMode::Mutex
//! [`IntakeMode::Sharded`]: phi_runtime::IntakeMode::Sharded
//! [`TileCacheMode::Shared`]: phi_runtime::TileCacheMode::Shared
//! [`TileCacheMode::PerWorker`]: phi_runtime::TileCacheMode::PerWorker
//! [`ArrivalSchedule::poisson`]: phi_bench::openloop::ArrivalSchedule::poisson
//! [`Workload::sample_client_requests`]: snn_workloads::Workload::sample_client_requests
//! [`Workload::drifted`]: snn_workloads::Workload::drifted
//! [`PhiServer::request_recalibration`]: phi_runtime::PhiServer::request_recalibration

use phi_bench::openloop::{ArrivalSchedule, LatencySummary};
use phi_bench::{bench_runs, env_f64, median, median_f64};
use phi_runtime::{
    available_cores, BatchExecutor, CompileOptions, CompiledModel, CpuBackend, InferenceRequest,
    IntakeMode, LifecycleMode, ModelCompiler, ModelRegistry, ModelStatsSnapshot, PhiServer,
    ResponseHandle, ServerConfig, ServerError, TileCacheMode, TolerancePolicy, PHI_LIFECYCLE_ENV,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_core::Matrix;
use snn_workloads::{DatasetId, ModelId, Workload, WorkloadConfig};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Rows per layer per request: one inference trace at T = 4 timesteps.
const ROWS_PER_REQUEST: usize = 4;
/// Concurrent closed-loop clients per track.
const CLIENT_TRACKS: [usize; 3] = [1, 8, 16];
/// Requests each client submits per measurement (shrunk under smoke, but
/// kept large enough that the gated throughput ratio never rides on a
/// sub-millisecond timing window).
const REQUESTS_PER_CLIENT: usize = 64;
const SMOKE_REQUESTS_PER_CLIENT: usize = 32;
/// Open-loop requests per track (shrunk under smoke).
const OPEN_LOOP_REQUESTS: usize = 2048;
const SMOKE_OPEN_LOOP_REQUESTS: usize = 256;
/// Offered load as a fraction of the measured closed-loop capacity: well
/// under, the fixed-load SLO point, near saturation, and past it.
const OPEN_LOOP_FRACTIONS: [f64; 4] = [0.5, 0.8, 0.95, 1.1];
/// Which fraction is reported as the fixed-load tail-latency readout.
const FIXED_LOAD_FRACTION: f64 = 0.8;
/// Arrival-schedule seed (per-track seeds offset from it).
const OPEN_LOOP_SEED: u64 = 0x0051_0015;
/// Concurrent streaming sessions (shrunk under smoke).
const STREAM_SESSIONS: usize = 8;
const SMOKE_STREAM_SESSIONS: usize = 2;
/// Timesteps per streamed session (shrunk under smoke).
const STREAM_TIMESTEPS: usize = 48;
const SMOKE_STREAM_TIMESTEPS: usize = 12;
/// Rows per streamed frame. Streaming frames are much wider than the
/// 4-row stateless requests: with tiny frames the per-frame serving
/// fixed costs (queue handoff, batching deadline, thread wakeup) drown
/// the decomposition work, and the incremental-vs-full ratio measures
/// scheduler noise instead of the decomposition saving it gates.
const STREAM_ROWS: usize = 64;
/// Row-churn rates swept by the streaming section: identical frames,
/// the gated 10% point, and heavy churn.
const STREAM_DELTAS: [f64; 3] = [0.0, 0.1, 0.5];
/// The delta whose incremental-vs-full ratio is gated.
const STREAM_GATED_DELTA: f64 = 0.1;
/// The batching deadline: long enough for a closed-loop wave of clients
/// to coalesce, short enough that a straggler-truncated batch costs
/// little.
const MAX_WAIT: Duration = Duration::from_micros(200);
/// The model key used for the registry.
const MODEL_KEY: &str = "vgg16-cifar10";
/// Concurrent clients of the drift track.
const DRIFT_CLIENTS: usize = 8;
/// Seed of the drifted serving distribution ([`Workload::drifted`]).
const DRIFT_SEED: u64 = 0x0D41_F7ED;
/// Canary comparisons required before the recalibrated candidate is
/// promoted (every drift-track request shadow-executes: slice 1.0).
const DRIFT_CANARY_TARGET: u64 = 16;
/// Served-request reservoir the recalibrator recompiles from.
const DRIFT_RESERVOIR: usize = 32;
/// Lifecycle thread tick while the drift track waits on a decision.
const DRIFT_INTERVAL: Duration = Duration::from_millis(5);
/// Ceiling on waiting for an asynchronous lifecycle decision.
const DRIFT_DEADLINE: Duration = Duration::from_secs(180);

/// One client's pre-generated closed-loop traffic.
type Traffic = Vec<InferenceRequest>;
/// Per-client reference readouts from the direct executor.
type Expected = Vec<Vec<Option<Matrix>>>;

fn client_traffic(workload: &Workload, clients: usize, count: usize) -> Vec<Traffic> {
    (0..clients as u64)
        .map(|c| {
            workload
                .sample_client_requests(c, count, ROWS_PER_REQUEST, 0x5EED)
                .into_iter()
                .map(InferenceRequest::new)
                .collect()
        })
        .collect()
}

/// Runs `client` closures concurrently in closed loop (each submits its
/// next request only after the previous resolved), returning the
/// wall-clock time of the whole wave and each client's readouts.
fn closed_loop<F>(clients: usize, f: F) -> (Duration, Vec<Vec<Option<Matrix>>>)
where
    F: Fn(usize) -> Vec<Option<Matrix>> + Sync,
{
    let barrier = Barrier::new(clients + 1);
    let mut start = Instant::now();
    let mut elapsed = Duration::ZERO;
    let mut outputs = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                let f = &f;
                scope.spawn(move || {
                    barrier.wait();
                    f(c)
                })
            })
            .collect();
        barrier.wait();
        start = Instant::now();
        outputs = handles.into_iter().map(|h| h.join().expect("client thread")).collect();
        elapsed = start.elapsed();
    });
    (elapsed, outputs)
}

/// The per-request status quo: direct batch-1 execution, no coalescing.
fn run_direct(
    executor: &BatchExecutor<CpuBackend>,
    traffic: &[Traffic],
) -> (Duration, Vec<Vec<Option<Matrix>>>) {
    closed_loop(traffic.len(), |c| {
        traffic[c]
            .iter()
            .map(|request| executor.execute_one(request).expect("direct serve").readout)
            .collect()
    })
}

/// The server configuration every track derives from (tracks override
/// `max_batch`, and the comparison sections override the knob they
/// measure). Also the source of the config block recorded in
/// `BENCH_server.json`.
fn base_config() -> ServerConfig {
    ServerConfig::default().with_max_wait(MAX_WAIT)
}

/// One closed-loop wave of the given traffic against an already-running
/// server — the drift track drives a long-lived server through several
/// of these across a hot swap, where `run_server`'s fresh-server-per-run
/// shape would reset the very lifecycle state under measurement.
fn serve_wave(server: &PhiServer, traffic: &[Traffic]) -> (Duration, Vec<Vec<Option<Matrix>>>) {
    // Each client's owned copy of its traffic, built before the timer:
    // `submit` consumes requests, and cloning spike matrices inside the
    // measured loop would charge request construction to the server.
    let owned: Vec<std::sync::Mutex<Option<Traffic>>> =
        traffic.iter().map(|t| std::sync::Mutex::new(Some(t.clone()))).collect();
    closed_loop(traffic.len(), |c| {
        let requests = owned[c].lock().expect("traffic lock").take().expect("one run per copy");
        requests
            .into_iter()
            .map(|request| {
                let handle = server.submit(MODEL_KEY, request).expect("admitted");
                handle.wait().expect("served").readout
            })
            .collect()
    })
}

/// The serving front-end: every client submits to the shared server.
fn run_server(
    model: &Arc<CompiledModel>,
    traffic: &[Traffic],
    config: ServerConfig,
) -> (Duration, Vec<Vec<Option<Matrix>>>, ModelStatsSnapshot) {
    let mut registry = ModelRegistry::new();
    registry.register(MODEL_KEY, Arc::clone(model));
    let server = PhiServer::start(registry, config);
    let (elapsed, outputs) = serve_wave(&server, traffic);
    let stats = server.stats(MODEL_KEY).expect("registered model");
    (elapsed, outputs, stats)
}

/// Measures one server configuration on fixed traffic over `runs`
/// repetitions, asserting bit-identity to `expected` on every run;
/// returns the best throughput (interleaving with a rival configuration
/// is the caller's job) and the last run's stats.
fn measure_server(
    model: &Arc<CompiledModel>,
    traffic: &[Traffic],
    expected: &[Vec<Option<Matrix>>],
    config: ServerConfig,
    runs: usize,
) -> (f64, ModelStatsSnapshot) {
    let total = traffic.iter().map(Vec::len).sum::<usize>() as f64;
    let mut times = Vec::with_capacity(runs);
    let mut last_stats = None;
    for _ in 0..runs {
        let (elapsed, outputs, stats) = run_server(model, traffic, config);
        assert!(outputs == *expected, "server readouts diverged from direct execution");
        times.push(elapsed);
        last_stats = Some(stats);
    }
    (total / median(times).as_secs_f64(), last_stats.expect("at least one run"))
}

/// Per-session temporal streams: frame `t+1` is frame `t` with each row
/// resampled (across every layer) at probability `delta` — the
/// correlated workload shape incremental decomposition is built for.
fn stream_traffic(
    workload: &Workload,
    sessions: usize,
    timesteps: usize,
    delta: f64,
) -> Vec<Traffic> {
    (0..sessions as u64)
        .map(|s| {
            let mut rng = StdRng::seed_from_u64(0x57AE ^ (s << 24));
            let mut frames: Traffic = workload
                .sample_client_requests(s, 1, STREAM_ROWS, 0x5EED)
                .into_iter()
                .map(InferenceRequest::new)
                .collect();
            while frames.len() < timesteps {
                let fresh = InferenceRequest::new(
                    workload.sample_client_requests(s, 1, STREAM_ROWS, rng.gen()).remove(0),
                );
                let prev = frames.last().expect("seeded with one frame");
                let resample: Vec<bool> = (0..STREAM_ROWS).map(|_| rng.gen_bool(delta)).collect();
                let layers = prev
                    .layers
                    .iter()
                    .zip(&fresh.layers)
                    .map(|(p, f)| {
                        let mut m = p.clone();
                        for (r, &hit) in resample.iter().enumerate() {
                            if hit {
                                for c in 0..m.cols() {
                                    m.set(r, c, f.get(r, c));
                                }
                            }
                        }
                        m
                    })
                    .collect();
                frames.push(InferenceRequest::new(layers));
            }
            frames
        })
        .collect()
}

/// Serves each session's stream through `submit_stream` in closed loop
/// (one thread per session, next frame only after the previous
/// resolved — the per-timestep latency a streaming client experiences),
/// asserting every streamed readout bit-identical to `expected` and
/// every session's close-time accounting exact. Returns the wall time,
/// per-frame latencies (µs), and the final stats snapshot.
fn run_stream(
    model: &Arc<CompiledModel>,
    streams: &[Traffic],
    expected: &[Vec<Option<Matrix>>],
    config: ServerConfig,
) -> (Duration, Vec<f64>, ModelStatsSnapshot) {
    let sessions = streams.len();
    let timesteps = streams[0].len();
    let mut registry = ModelRegistry::new();
    registry.register(MODEL_KEY, Arc::clone(model));
    let server = PhiServer::start(registry, config);
    let ids: Vec<u64> =
        (0..sessions).map(|_| server.open_session(MODEL_KEY).expect("session")).collect();
    let owned: Vec<std::sync::Mutex<Option<Traffic>>> =
        streams.iter().map(|t| std::sync::Mutex::new(Some(t.clone()))).collect();
    let barrier = Barrier::new(sessions + 1);
    let mut elapsed = Duration::ZERO;
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                let barrier = &barrier;
                let server = &server;
                let owned = &owned;
                let expected = &expected[s];
                let id = ids[s];
                scope.spawn(move || {
                    let frames =
                        owned[s].lock().expect("traffic lock").take().expect("one run per copy");
                    barrier.wait();
                    let mut lat = Vec::with_capacity(frames.len());
                    for (t, frame) in frames.into_iter().enumerate() {
                        let t0 = Instant::now();
                        let handle = server.submit_stream(MODEL_KEY, id, frame).expect("admitted");
                        let response = handle.wait().expect("served");
                        lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        assert!(
                            response.readout == expected[t],
                            "streamed readout diverged from direct execution at timestep {t}"
                        );
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for handle in handles {
            latencies.extend(handle.join().expect("session thread"));
        }
        elapsed = start.elapsed();
    });
    let stats = server.stats(MODEL_KEY).expect("registered model");
    for id in ids {
        let closed = server.close_session(MODEL_KEY, id).expect("close session");
        assert_eq!(closed.timesteps, timesteps as u64, "session lost timesteps");
        assert!(closed.rate.is_some(), "streamed sessions must carry a rate readout");
    }
    (elapsed, latencies, stats)
}

/// One streaming delta track: incremental streamed serving vs full
/// re-decomposition of the same frames through the stateless path.
struct StreamTrack {
    delta: f64,
    stream_inf_s: f64,
    full_inf_s: f64,
    /// Median of the per-run (incremental / full) rate ratios, from
    /// back-to-back interleaved pairs — robust to host-share drift.
    speedup: f64,
    latency: LatencySummary,
    stats: ModelStatsSnapshot,
}

/// One open-loop measurement at a fixed offered rate.
struct OpenLoopRun {
    achieved_inf_per_s: f64,
    served: usize,
    shed: usize,
    latency: LatencySummary,
}

/// Replays a deterministic Poisson arrival schedule against a fresh
/// server from a single submitter thread, never waiting for responses
/// while arrivals are due (the open loop: the schedule, not the server,
/// sets the pace). Per-request latency is charged from the *scheduled*
/// arrival instant — a submitter running late adds its slip to the
/// latency instead of thinning the offered load — and every served
/// readout is asserted bit-identical to `expected`.
fn run_open_loop(
    model: &Arc<CompiledModel>,
    traffic: &[InferenceRequest],
    expected: &[Option<Matrix>],
    rate_per_s: f64,
    seed: u64,
) -> OpenLoopRun {
    enum Outcome {
        Served { handle: ResponseHandle, submit_lag: Duration },
        Shed,
    }
    let schedule = ArrivalSchedule::poisson(rate_per_s, traffic.len(), seed);
    let mut registry = ModelRegistry::new();
    registry.register(MODEL_KEY, Arc::clone(model));
    let server = PhiServer::start(registry, base_config());
    let mut owned: Vec<Option<InferenceRequest>> = traffic.iter().cloned().map(Some).collect();

    let start = Instant::now();
    let mut outcomes = Vec::with_capacity(traffic.len());
    for (i, target) in schedule.offsets().iter().copied().enumerate() {
        // Pace to the schedule: sleep off the bulk of the gap, spin the
        // last stretch (sleep granularity is coarser than inter-arrival
        // gaps at high offered rates).
        loop {
            let now = start.elapsed();
            if now >= target {
                break;
            }
            let remaining = target - now;
            if remaining > Duration::from_millis(1) {
                std::thread::sleep(remaining - Duration::from_micros(500));
            } else {
                std::hint::spin_loop();
            }
        }
        let submit_lag = start.elapsed().saturating_sub(target);
        let request = owned[i].take().expect("one submit per arrival");
        match server.submit(MODEL_KEY, request) {
            Ok(handle) => outcomes.push(Outcome::Served { handle, submit_lag }),
            Err(ServerError::QueueFull { .. }) => outcomes.push(Outcome::Shed),
            Err(e) => panic!("unexpected open-loop admission error: {e}"),
        }
    }

    let mut latencies_us = Vec::with_capacity(outcomes.len());
    let (mut served, mut shed) = (0usize, 0usize);
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Outcome::Served { handle, submit_lag } => {
                let response = handle.wait().expect("open-loop serve");
                assert!(
                    response.readout == expected[i],
                    "open-loop server readout diverged from direct execution"
                );
                let total = submit_lag + response.queue_wait + response.exec;
                latencies_us.push(total.as_secs_f64() * 1e6);
                served += 1;
            }
            Outcome::Shed => shed += 1,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    OpenLoopRun {
        achieved_inf_per_s: served as f64 / wall,
        served,
        shed,
        latency: LatencySummary::from_samples_us(latencies_us),
    }
}

struct TrackResult {
    clients: usize,
    direct_concurrent_inf_s: f64,
    server_inf_s: f64,
    stats: ModelStatsSnapshot,
}

struct OpenLoopTrack {
    offered_fraction: f64,
    offered_inf_per_s: f64,
    run: OpenLoopRun,
}

fn shards_json(shards: &[phi_core::TileCacheStats]) -> String {
    let entries: Vec<String> = shards.iter().map(|s| format!("{:.6}", s.hit_rate())).collect();
    format!("[{}]", entries.join(", "))
}

/// Per-client reference readouts for `traffic` on one executor.
fn reference(direct: &BatchExecutor<CpuBackend>, traffic: &[Traffic]) -> Expected {
    traffic
        .iter()
        .map(|frames| {
            frames.iter().map(|r| direct.execute_one(r).expect("reference").readout).collect()
        })
        .collect()
}

/// What the drift track measured (see [`run_drift_track`]).
struct DriftReport {
    baseline_inf_s: f64,
    drifted_inf_s: f64,
    recovered_inf_s: f64,
    promoted_version: u64,
    recompiles: u64,
    canary_compared: u64,
    samples_seen: u64,
    rolled_back_delta: u64,
    rollback_shed_delta: u64,
    version_after_rollback: u64,
}

/// The drift track: serving traffic shifts away from the distribution
/// the artifact was calibrated on, throughput collapses (patterns stop
/// matching, every mismatch decomposes the slow way), the lifecycle
/// recalibrator recompiles from a reservoir of *served* requests,
/// shadow-executes the candidate on live traffic, hot-swaps it in — and
/// throughput on the drifted traffic recovers to within
/// `PHI_SERVER_MIN_DRIFT_RECOVERY` of the pre-drift baseline. A second
/// proposal with genuinely different weights is then injected under
/// [`TolerancePolicy::BitIdentical`] and must roll back without
/// disturbing (or shedding) a single live request.
///
/// Every readout in every phase is asserted bit-identical to direct
/// execution on the version that served it; across the swap itself a
/// response may come from the incumbent or the promoted artifact, but
/// never from a blend of the two.
fn run_drift_track(
    workload: &Workload,
    model: &Arc<CompiledModel>,
    direct: &BatchExecutor<CpuBackend>,
    runs: usize,
    per_client: usize,
) -> DriftReport {
    let drift_cfg = base_config()
        .with_max_batch(DRIFT_CLIENTS)
        .with_lifecycle(LifecycleMode::Auto)
        .with_canary_slice(1.0)
        .with_canary_target(DRIFT_CANARY_TARGET)
        .with_reservoir_capacity(DRIFT_RESERVOIR)
        // Recalibration fires on the explicit nudge below, never on a
        // served-request counter: the phases stay deterministic.
        .with_recalibrate_after(u64::MAX)
        .with_lifecycle_interval(DRIFT_INTERVAL);
    let total = (DRIFT_CLIENTS * per_client) as f64;

    // Phase 1 — baseline: the calibrated distribution, throwaway servers.
    let traffic = client_traffic(workload, DRIFT_CLIENTS, per_client);
    let expected = reference(direct, &traffic);
    let (baseline_inf_s, _) = measure_server(model, &traffic, &expected, drift_cfg, runs);

    // Phase 2 — collapse: the same artifact serving drifted traffic. The
    // nudge never fires on these throwaway servers, so they pin the
    // un-recalibrated rate (and its bit-identity to the incumbent).
    let drifted_workload = workload.drifted(DRIFT_SEED);
    let drift_traffic = client_traffic(&drifted_workload, DRIFT_CLIENTS, per_client);
    let expected_v1 = reference(direct, &drift_traffic);
    let (drifted_inf_s, _) = measure_server(model, &drift_traffic, &expected_v1, drift_cfg, runs);

    // Phase 3 — recalibrate: one long-lived server sees only drifted
    // traffic (its reservoir samples nothing stale), is nudged, and is
    // driven until the recompiled candidate survives its canary window.
    let mut registry = ModelRegistry::new();
    registry.register(MODEL_KEY, Arc::clone(model));
    let server = PhiServer::start(registry, drift_cfg);
    let (_, warm) = serve_wave(&server, &drift_traffic);
    assert!(warm == expected_v1, "pre-recalibration serving diverged from the incumbent");
    server.request_recalibration(MODEL_KEY).expect("registered model");
    let deadline = Instant::now() + DRIFT_DEADLINE;
    let mut drive_waves: Vec<Vec<Vec<Option<Matrix>>>> = Vec::new();
    loop {
        let (_, outputs) = serve_wave(&server, &drift_traffic);
        drive_waves.push(outputs);
        let lc = server.lifecycle_stats(MODEL_KEY).expect("registered model");
        assert_eq!(lc.compile_failures, 0, "recompiling from served samples must not fail");
        if lc.promoted >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "recalibration never promoted (recompiles {}, canary comparisons {})",
            lc.recompiles,
            lc.canary_compared,
        );
    }
    let promoted = server.model(MODEL_KEY).expect("registered model");
    assert_ne!(
        promoted.to_bytes(),
        model.to_bytes(),
        "promotion must have installed the recalibrated artifact"
    );
    // Responses that straddled the swap came from whichever version
    // admitted them — each must be bit-identical to direct execution on
    // that version, never a mixture.
    let direct_v2 = BatchExecutor::cpu(Arc::clone(&promoted)).with_tile_cache_capacity(0);
    let expected_v2 = reference(&direct_v2, &drift_traffic);
    for wave in &drive_waves {
        for (c, client) in wave.iter().enumerate() {
            for (i, readout) in client.iter().enumerate() {
                assert!(
                    *readout == expected_v1[c][i] || *readout == expected_v2[c][i],
                    "swap-window readout matches neither the incumbent nor the promoted artifact"
                );
            }
        }
    }

    // Phase 4 — recovery: the promoted artifact serving the drifted
    // traffic it was recalibrated for (one warm pass first — a freshly
    // promoted artifact starts with cold tile caches).
    let (_, warm) = serve_wave(&server, &drift_traffic);
    assert!(warm == expected_v2, "post-promotion serving diverged from the promoted artifact");
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let (elapsed, outputs) = serve_wave(&server, &drift_traffic);
        assert!(outputs == expected_v2, "recovered serving diverged from the promoted artifact");
        times.push(elapsed);
    }
    let recovered_inf_s = total / median(times).as_secs_f64();
    let lc = server.lifecycle_stats(MODEL_KEY).expect("registered model");
    let (promoted_version, recompiles, canary_compared, samples_seen) =
        (lc.version, lc.recompiles, lc.canary_compared, lc.samples_seen);

    // Phase 5 — injected failure: a rival with genuinely different
    // weights can never survive a bit-identity canary. The incumbent
    // must keep serving untouched and nothing may be shed.
    let rival =
        Arc::new(ModelCompiler::new(CompileOptions::default().with_seed(8)).compile(workload));
    assert_ne!(rival.to_bytes(), promoted.to_bytes(), "the rival must genuinely diverge");
    let stats_before = server.stats(MODEL_KEY).expect("registered model");
    let lc_before = server.lifecycle_stats(MODEL_KEY).expect("registered model");
    let proposed = server
        .propose(MODEL_KEY, rival, TolerancePolicy::BitIdentical)
        .expect("no canary in flight");
    assert!(proposed > lc_before.version, "a proposal always takes a fresh version");
    let deadline = Instant::now() + DRIFT_DEADLINE;
    loop {
        let (_, outputs) = serve_wave(&server, &drift_traffic);
        assert!(outputs == expected_v2, "a rejected canary must never disturb live traffic");
        let lc = server.lifecycle_stats(MODEL_KEY).expect("registered model");
        if lc.rolled_back > lc_before.rolled_back {
            break;
        }
        assert!(Instant::now() < deadline, "diverging canary never rolled back");
    }
    let lc_after = server.lifecycle_stats(MODEL_KEY).expect("registered model");
    let stats_after = server.stats(MODEL_KEY).expect("registered model");
    assert_eq!(lc_after.version, lc_before.version, "rollback must keep the incumbent version");
    assert_eq!(lc_after.promoted, lc_before.promoted, "a rolled-back canary must not promote");
    let rollback_shed_delta = stats_after.shed - stats_before.shed;
    assert_eq!(
        (rollback_shed_delta, stats_after.failed - stats_before.failed),
        (0, 0),
        "rollback must not shed or fail a single live request"
    );

    DriftReport {
        baseline_inf_s,
        drifted_inf_s,
        recovered_inf_s,
        promoted_version,
        recompiles,
        canary_compared,
        samples_seen,
        rolled_back_delta: lc_after.rolled_back - lc_before.rolled_back,
        rollback_shed_delta,
        version_after_rollback: lc_after.version,
    }
}

fn main() {
    let runs = bench_runs();
    let smoke = std::env::var("PHI_SERVER_SMOKE").is_ok_and(|v| v == "1");
    let per_client = if smoke { SMOKE_REQUESTS_PER_CLIENT } else { REQUESTS_PER_CLIENT };
    let open_loop_n = if smoke { SMOKE_OPEN_LOOP_REQUESTS } else { OPEN_LOOP_REQUESTS };
    let cores = available_cores();

    println!("generating VGG-16 / CIFAR-10 workload + compiling artifact...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let model = Arc::new(ModelCompiler::new(CompileOptions::default()).compile(&workload));
    // The reference pass runs uncached: the servers keep their (default)
    // tile caches, so the bit-identity assert per run covers the cached
    // vs uncached decomposition paths on real serving traffic.
    let direct = BatchExecutor::cpu(Arc::clone(&model)).with_tile_cache_capacity(0);

    let mut tracks = Vec::new();
    let mut all_match = true;
    let mut widest: Option<(Vec<Traffic>, Expected)> = None;
    for clients in CLIENT_TRACKS {
        let traffic = client_traffic(&workload, clients, per_client);
        let total = (clients * per_client) as f64;

        // The direct runs double as the reference pass: their readouts
        // are the expected outputs every server response must equal (and
        // must themselves be identical run to run — direct execution is
        // deterministic).
        let mut direct_times = Vec::with_capacity(runs);
        let mut expected: Option<Vec<Vec<Option<Matrix>>>> = None;
        for _ in 0..runs {
            let (elapsed, outputs) = run_direct(&direct, &traffic);
            direct_times.push(elapsed);
            match &expected {
                Some(reference) => {
                    assert!(*reference == outputs, "direct execution must be deterministic")
                }
                None => expected = Some(outputs),
            }
        }
        let expected = expected.expect("at least one direct run");
        let direct_concurrent_inf_s = total / median(direct_times).as_secs_f64();

        let config = base_config().with_max_batch(clients);
        let (server_inf_s, stats) = measure_server(&model, &traffic, &expected, config, runs);
        all_match &= true; // measure_server asserts per run

        println!(
            "  {clients:>2} clients: direct {direct_concurrent_inf_s:>9.1} inf/s | server \
             {server_inf_s:>9.1} inf/s (mean batch {:.1}, p50 wait {:.0} us)",
            stats.mean_batch, stats.p50_queue_wait_us,
        );
        tracks.push(TrackResult { clients, direct_concurrent_inf_s, server_inf_s, stats });
        widest = Some((traffic, expected));
    }
    let (wide_traffic, wide_expected) = widest.expect("at least one track");
    let wide_clients = wide_traffic.len();

    // ---- Intake head-to-head: single mutex vs sharded, same traffic ----
    let intake_cfg = base_config().with_max_batch(wide_clients);
    let (mutex_inf_s, _) = measure_server(
        &model,
        &wide_traffic,
        &wide_expected,
        intake_cfg.with_intake(IntakeMode::Mutex),
        runs,
    );
    let (sharded_inf_s, _) = measure_server(
        &model,
        &wide_traffic,
        &wide_expected,
        intake_cfg.with_intake(IntakeMode::Sharded),
        runs,
    );
    let intake_ratio = sharded_inf_s / mutex_inf_s;
    println!(
        "  intake @ {wide_clients} clients: mutex {mutex_inf_s:>9.1} inf/s | sharded \
         {sharded_inf_s:>9.1} inf/s ({intake_ratio:.2}x)"
    );

    // ---- Multi-worker: 1 worker vs the core count (or override) ----
    let workers_multi = std::env::var("PHI_SERVER_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&w: &usize| w >= 2)
        .unwrap_or_else(|| cores.max(2));
    let (single_inf_s, _) =
        measure_server(&model, &wide_traffic, &wide_expected, intake_cfg.with_workers(1), runs);
    let (multi_inf_s, _) = measure_server(
        &model,
        &wide_traffic,
        &wide_expected,
        intake_cfg.with_workers(workers_multi),
        runs,
    );
    let worker_speedup = multi_inf_s / single_inf_s;
    // The scaling floor is only meaningful where extra workers have
    // somewhere to run: on a single-core host the comparison still
    // executes (oversubscribed workers must not corrupt anything — the
    // bit-identity asserts above cover that), but the throughput gate is
    // skipped, matching the "on a multi-core host" acceptance wording.
    let worker_floor = env_f64("PHI_SERVER_MIN_WORKER_SPEEDUP", 1.5);
    let worker_floor_checked = cores >= 2 && worker_floor > 0.0;
    println!(
        "  workers @ {wide_clients} clients: 1 -> {single_inf_s:>9.1} inf/s | {workers_multi} -> \
         {multi_inf_s:>9.1} inf/s ({worker_speedup:.2}x{})",
        if worker_floor_checked { "" } else { ", floor skipped: single-core host" }
    );

    // ---- Cache modes: shared vs per-worker tile caches ----
    let cache_cfg = intake_cfg.with_workers(workers_multi);
    let (shared_inf_s, shared_stats) = measure_server(
        &model,
        &wide_traffic,
        &wide_expected,
        cache_cfg.with_cache_mode(TileCacheMode::Shared),
        runs,
    );
    let (per_worker_inf_s, per_worker_stats) = measure_server(
        &model,
        &wide_traffic,
        &wide_expected,
        cache_cfg.with_cache_mode(TileCacheMode::PerWorker),
        runs,
    );
    println!(
        "  caches @ {workers_multi} workers: shared {shared_inf_s:>9.1} inf/s (hit {:.1}%) | \
         per-worker {per_worker_inf_s:>9.1} inf/s (hit {:.1}%, {} shards)",
        100.0 * shared_stats.tile_cache.hit_rate(),
        100.0 * per_worker_stats.tile_cache.hit_rate(),
        per_worker_stats.tile_cache_shards.len(),
    );

    // ---- Open loop: Poisson arrivals at fractions of capacity ----
    // Capacity is estimated from the best closed-loop server rate; the
    // open-loop tracks then offer fixed fractions of it, which makes the
    // 1.1x track a genuine overload no closed-loop client can produce.
    let capacity = tracks
        .iter()
        .map(|t| t.server_inf_s)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(sharded_inf_s)
        .max(multi_inf_s);
    let open_traffic: Vec<InferenceRequest> = workload
        .sample_client_requests(0xA5, open_loop_n, ROWS_PER_REQUEST, 0x5EED)
        .into_iter()
        .map(InferenceRequest::new)
        .collect();
    let open_expected: Vec<Option<Matrix>> = open_traffic
        .iter()
        .map(|r| direct.execute_one(r).expect("open-loop reference").readout)
        .collect();
    let mut open_tracks: Vec<OpenLoopTrack> = Vec::new();
    for (i, fraction) in OPEN_LOOP_FRACTIONS.into_iter().enumerate() {
        let offered = capacity * fraction;
        let seed = OPEN_LOOP_SEED + i as u64;
        // Best-achieved run, consistent with the repo's min-of-runs
        // timing convention; the schedule itself is identical per run.
        let mut best: Option<OpenLoopRun> = None;
        for _ in 0..runs {
            let run = run_open_loop(&model, &open_traffic, &open_expected, offered, seed);
            if best.as_ref().is_none_or(|b| run.achieved_inf_per_s > b.achieved_inf_per_s) {
                best = Some(run);
            }
        }
        let run = best.expect("at least one open-loop run");
        println!(
            "  open loop {fraction:>4.2}x cap ({offered:>9.1} inf/s offered): achieved \
             {:>9.1} inf/s, shed {:>4.1}%, p50 {:>7.0} us, p99 {:>7.0} us, p999 {:>7.0} us",
            run.achieved_inf_per_s,
            100.0 * run.shed as f64 / open_loop_n as f64,
            run.latency.p50_us,
            run.latency.p99_us,
            run.latency.p999_us,
        );
        open_tracks.push(OpenLoopTrack {
            offered_fraction: fraction,
            offered_inf_per_s: offered,
            run,
        });
    }
    let fixed_load = open_tracks
        .iter()
        .find(|t| t.offered_fraction == FIXED_LOAD_FRACTION)
        .expect("fixed-load fraction is always swept");
    let saturation = open_tracks.last().expect("at least one open-loop track");
    let saturation_shed_rate = saturation.run.shed as f64 / open_loop_n as f64;

    // ---- Streaming: persistent sessions, incremental vs full decompose ----
    let stream_sessions = if smoke { SMOKE_STREAM_SESSIONS } else { STREAM_SESSIONS };
    let stream_timesteps = if smoke { SMOKE_STREAM_TIMESTEPS } else { STREAM_TIMESTEPS };
    // Both streaming servers run with the per-layer tile cache disabled:
    // the baseline must genuinely re-decompose every frame from scratch
    // (with the cache on, temporally-correlated traffic is largely
    // memoized by the second run and the comparison measures cache
    // warmth, not incremental decomposition — the cache's own win is
    // benchmarked separately above).
    let stream_cfg = base_config().with_max_batch(stream_sessions).with_tile_cache(0);
    let stream_total = (stream_sessions * stream_timesteps) as f64;
    let mut stream_tracks: Vec<StreamTrack> = Vec::new();
    for delta in STREAM_DELTAS {
        let streams = stream_traffic(&workload, stream_sessions, stream_timesteps, delta);
        let expected: Vec<Vec<Option<Matrix>>> = streams
            .iter()
            .map(|frames| {
                frames
                    .iter()
                    .map(|f| direct.execute_one(f).expect("stream reference").readout)
                    .collect()
            })
            .collect();

        // Interleave the incremental and full measurements run by run
        // (the bench_pipeline idiom): on a container whose host share
        // drifts over a minutes-long run, back-to-back pairs keep each
        // ratio honest where two widely separated blocks would measure
        // the scheduler. The gated ratio is the median of the per-pair
        // ratios; the reported rates are the per-path medians.
        let mut stream_rates = Vec::with_capacity(runs);
        let mut full_rates = Vec::with_capacity(runs);
        let mut ratios = Vec::with_capacity(runs);
        let mut last: Option<(Vec<f64>, ModelStatsSnapshot)> = None;
        for _ in 0..runs {
            let (elapsed, lats, stats) = run_stream(&model, &streams, &expected, stream_cfg);
            let stream_rate = stream_total / elapsed.as_secs_f64();
            // The full-re-decomposition baseline: the same frames through
            // the stateless path (every frame decomposed from scratch),
            // same batcher, same coalescing width.
            let (full_rate, _) = measure_server(&model, &streams, &expected, stream_cfg, 1);
            stream_rates.push(stream_rate);
            full_rates.push(full_rate);
            ratios.push(stream_rate / full_rate);
            last = Some((lats, stats));
        }
        let (lats, stats) = last.expect("at least one stream run");
        let stream_inf_s = median_f64(stream_rates);
        let full_inf_s = median_f64(full_rates);
        let paired_speedup = median_f64(ratios);
        let skip_rate = if stats.stream_delta.rows_total > 0 {
            stats.stream_delta.rows_skipped as f64 / stats.stream_delta.rows_total as f64
        } else {
            0.0
        };
        println!(
            "  stream δ={delta:.2} @ {stream_sessions} sessions: incremental \
             {stream_inf_s:>9.1} fr/s | full {full_inf_s:>9.1} fr/s ({paired_speedup:.2}x \
             paired, rows skipped {:.1}%, p50 frame {:.0} us)",
            100.0 * skip_rate,
            LatencySummary::from_samples_us(lats.clone()).p50_us,
        );
        stream_tracks.push(StreamTrack {
            delta,
            stream_inf_s,
            full_inf_s,
            speedup: paired_speedup,
            latency: LatencySummary::from_samples_us(lats),
            stats,
        });
    }
    let gated = stream_tracks
        .iter()
        .find(|t| t.delta == STREAM_GATED_DELTA)
        .expect("the gated delta is always swept");
    let stream_speedup = gated.speedup;
    let stream_floor = env_f64("PHI_SERVER_MIN_STREAM_SPEEDUP", 1.2);
    println!(
        "incremental streaming at δ={STREAM_GATED_DELTA:.2} vs full re-decomposition: \
         {stream_speedup:.2}x"
    );

    // ---- Drift: shift -> collapse -> recalibrate -> hot swap -> recover ----
    let lifecycle_off =
        std::env::var(PHI_LIFECYCLE_ENV).is_ok_and(|v| v.trim().eq_ignore_ascii_case("off"));
    let drift = if lifecycle_off {
        println!("  drift: skipped ({PHI_LIFECYCLE_ENV}=off pins the static-registry path)");
        None
    } else {
        let d = run_drift_track(&workload, &model, &direct, runs, per_client);
        println!(
            "  drift: baseline {:>9.1} inf/s | drifted {:>9.1} inf/s ({:.2}x) | recovered \
             {:>9.1} inf/s ({:.2}x of baseline; version {}, {} recompiles, {} canary \
             comparisons)",
            d.baseline_inf_s,
            d.drifted_inf_s,
            d.drifted_inf_s / d.baseline_inf_s,
            d.recovered_inf_s,
            d.recovered_inf_s / d.baseline_inf_s,
            d.promoted_version,
            d.recompiles,
            d.canary_compared,
        );
        println!(
            "  drift rollback: diverging canary rolled back (version {} kept, {} requests shed)",
            d.version_after_rollback, d.rollback_shed_delta,
        );
        Some(d)
    };

    // The canonical "per-request (batch-1) serving" rate is the 1-client
    // direct track: one request stream through `execute_one`, nothing
    // coalesced — exactly bench_serving's CPU batch-1 configuration. The
    // per-track concurrent direct rates are reported for context, but on
    // a container whose share of the host fluctuates they measure the
    // scheduler as much as the code, so the headline is pinned to the
    // stable single-stream baseline.
    let batch1_inf_s = tracks
        .iter()
        .find(|t| t.clients == 1)
        .expect("1-client track is always swept")
        .direct_concurrent_inf_s;
    // Headline: the best track with at least 8 concurrent clients. The
    // 8-client track sits close to the executor's own batch-8 ceiling
    // (fused execution is ~5x cheaper per request than batch 1, so ~3x
    // after queueing overhead), while wider concurrency has more
    // amortization headroom — the headline reports what dynamic batching
    // achieves at scale without pinning the gate to the thinnest margin.
    let headline = tracks
        .iter()
        .filter(|t| t.clients >= 8)
        .max_by(|a, b| a.server_inf_s.total_cmp(&b.server_inf_s))
        .expect("a track with >= 8 clients is always swept");
    let speedup = headline.server_inf_s / batch1_inf_s;
    println!(
        "dynamic batching at {} clients vs per-request (batch-1) serving \
         ({batch1_inf_s:.1} inf/s): {speedup:.1}x",
        headline.clients
    );
    println!("server outputs == direct executor outputs: {all_match}");

    let track_json: Vec<String> = tracks
        .iter()
        .map(|t| {
            format!(
                r#"    {{
      "clients": {clients},
      "max_batch": {clients},
      "direct_concurrent_inf_per_s": {direct:.3},
      "server_inf_per_s": {server:.3},
      "speedup_vs_batch1": {speedup:.3},
      "served": {served},
      "batches": {batches},
      "mean_batch": {mean_batch:.3},
      "shed": {shed},
      "p50_queue_wait_us": {p50_wait:.1},
      "p99_queue_wait_us": {p99_wait:.1},
      "p50_exec_us": {p50_exec:.1},
      "p99_exec_us": {p99_exec:.1},
      "tile_cache_hit_rate": {cache_hit_rate:.6}
    }}"#,
                clients = t.clients,
                direct = t.direct_concurrent_inf_s,
                server = t.server_inf_s,
                speedup = t.server_inf_s / batch1_inf_s,
                served = t.stats.served,
                batches = t.stats.batches,
                mean_batch = t.stats.mean_batch,
                shed = t.stats.shed,
                p50_wait = t.stats.p50_queue_wait_us,
                p99_wait = t.stats.p99_queue_wait_us,
                p50_exec = t.stats.p50_exec_us,
                p99_exec = t.stats.p99_exec_us,
                cache_hit_rate = t.stats.tile_cache.hit_rate(),
            )
        })
        .collect();
    let stream_track_json: Vec<String> = stream_tracks
        .iter()
        .map(|t| {
            let d = &t.stats.stream_delta;
            format!(
                r#"      {{
        "delta": {delta:.2},
        "stream_inf_per_s": {stream:.3},
        "full_inf_per_s": {full:.3},
        "speedup": {speedup:.3},
        "p50_frame_latency_us": {p50:.1},
        "p99_frame_latency_us": {p99:.1},
        "stream_frames": {frames},
        "rows_total": {rows_total},
        "rows_skipped": {rows_skipped},
        "rows_skipped_rate": {skip_rate:.6},
        "tiles_reused": {tiles_reused},
        "tiles_rematched": {tiles_rematched}
      }}"#,
                delta = t.delta,
                stream = t.stream_inf_s,
                full = t.full_inf_s,
                speedup = t.speedup,
                p50 = t.latency.p50_us,
                p99 = t.latency.p99_us,
                frames = t.stats.stream_frames,
                rows_total = d.rows_total,
                rows_skipped = d.rows_skipped,
                skip_rate = if d.rows_total > 0 {
                    d.rows_skipped as f64 / d.rows_total as f64
                } else {
                    0.0
                },
                tiles_reused = d.tiles_reused,
                tiles_rematched = d.tiles_rematched,
            )
        })
        .collect();
    let drift_floor = env_f64("PHI_SERVER_MIN_DRIFT_RECOVERY", 0.9);
    let drift_json = match &drift {
        Some(d) => format!(
            r#"{{
    "clients": {DRIFT_CLIENTS},
    "requests_per_client": {per_client},
    "drift_seed": {DRIFT_SEED},
    "canary_target": {DRIFT_CANARY_TARGET},
    "reservoir_capacity": {DRIFT_RESERVOIR},
    "baseline_inf_per_s": {baseline:.3},
    "drifted_inf_per_s": {drifted:.3},
    "collapse_ratio": {collapse:.3},
    "recovered_inf_per_s": {recovered:.3},
    "recovery_ratio": {recovery:.3},
    "min_recovery": {drift_floor},
    "promoted_version": {version},
    "recompiles": {recompiles},
    "canary_compared": {compared},
    "samples_seen": {samples},
    "rollback": {{ "rolled_back": {rolled_back}, "shed": {shed}, "version_kept": {kept} }}
  }}"#,
            baseline = d.baseline_inf_s,
            drifted = d.drifted_inf_s,
            collapse = d.drifted_inf_s / d.baseline_inf_s,
            recovered = d.recovered_inf_s,
            recovery = d.recovered_inf_s / d.baseline_inf_s,
            version = d.promoted_version,
            recompiles = d.recompiles,
            compared = d.canary_compared,
            samples = d.samples_seen,
            rolled_back = d.rolled_back_delta,
            shed = d.rollback_shed_delta,
            kept = d.version_after_rollback,
        ),
        None => "null".to_string(),
    };
    let open_track_json: Vec<String> = open_tracks
        .iter()
        .map(|t| {
            format!(
                r#"      {{
        "offered_fraction": {fraction:.2},
        "offered_inf_per_s": {offered:.3},
        "achieved_inf_per_s": {achieved:.3},
        "served": {served},
        "shed": {shed},
        "shed_rate": {shed_rate:.6},
        "p50_latency_us": {p50:.1},
        "p99_latency_us": {p99:.1},
        "p999_latency_us": {p999:.1},
        "max_latency_us": {max:.1}
      }}"#,
                fraction = t.offered_fraction,
                offered = t.offered_inf_per_s,
                achieved = t.run.achieved_inf_per_s,
                served = t.run.served,
                shed = t.run.shed,
                shed_rate = t.run.shed as f64 / open_loop_n as f64,
                p50 = t.run.latency.p50_us,
                p99 = t.run.latency.p99_us,
                p999 = t.run.latency.p999_us,
                max = t.run.latency.max_us,
            )
        })
        .collect();
    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{
    "rows_per_request": {ROWS_PER_REQUEST},
    "requests_per_client": {per_client},
    "max_wait_us": {max_wait_us},
    "queue_capacity": {queue_capacity},
    "backend": "{backend}",
    "workers": {workers},
    "tile_cache": {tile_cache},
    "intake": "{intake}",
    "intake_shards": {intake_shards},
    "cache_mode": "{cache_mode}"
  }},
  "runs": {runs},
  "threads": {threads},
  "tracks": [
{tracks}
  ],
  "direct_batch1_inf_per_s": {batch1_inf_s:.3},
  "headline": {{ "clients": {headline_clients}, "speedup_vs_direct_batch1": {speedup:.3} }},
  "intake_comparison": {{
    "clients": {wide_clients},
    "mutex_inf_per_s": {mutex_inf_s:.3},
    "sharded_inf_per_s": {sharded_inf_s:.3},
    "sharded_over_mutex": {intake_ratio:.3}
  }},
  "multi_worker": {{
    "workers_single": 1,
    "workers_multi": {workers_multi},
    "single_inf_per_s": {single_inf_s:.3},
    "multi_inf_per_s": {multi_inf_s:.3},
    "speedup": {worker_speedup:.3},
    "floor": {worker_floor},
    "floor_checked": {worker_floor_checked}
  }},
  "cache_modes": {{
    "workers": {workers_multi},
    "shared": {{ "inf_per_s": {shared_inf_s:.3}, "hit_rate": {shared_hit:.6}, "shard_hit_rates": {shared_shards} }},
    "per_worker": {{ "inf_per_s": {per_worker_inf_s:.3}, "hit_rate": {per_worker_hit:.6}, "shard_hit_rates": {per_worker_shards} }}
  }},
  "open_loop": {{
    "requests": {open_loop_n},
    "seed": {OPEN_LOOP_SEED},
    "capacity_estimate_inf_per_s": {capacity:.3},
    "tracks": [
{open_tracks}
    ],
    "fixed_load": {{
      "offered_fraction": {fixed_fraction:.2},
      "p50_latency_us": {fixed_p50:.1},
      "p99_latency_us": {fixed_p99:.1},
      "p999_latency_us": {fixed_p999:.1}
    }},
    "saturation_shed_rate": {saturation_shed_rate:.6}
  }},
  "streaming": {{
    "sessions": {stream_sessions},
    "timesteps": {stream_timesteps},
    "rows_per_frame": {STREAM_ROWS},
    "gated_delta": {STREAM_GATED_DELTA:.2},
    "gated_speedup": {stream_speedup:.3},
    "min_stream_speedup": {stream_floor},
    "tracks": [
{stream_tracks_json}
    ]
  }},
  "drift": {drift_json},
  "server_outputs_match_direct_executor": {all_match}
}}
"#,
        headline_clients = headline.clients,
        max_wait_us = base_config().max_wait.as_micros(),
        queue_capacity = base_config().queue_capacity,
        backend = base_config().backend,
        workers = base_config().workers,
        tile_cache = base_config().tile_cache,
        intake = base_config().intake,
        intake_shards = base_config().intake_shard_count(),
        cache_mode = base_config().cache_mode,
        threads = cores,
        tracks = track_json.join(",\n"),
        open_tracks = open_track_json.join(",\n"),
        stream_tracks_json = stream_track_json.join(",\n"),
        shared_hit = shared_stats.tile_cache.hit_rate(),
        shared_shards = shards_json(&shared_stats.tile_cache_shards),
        per_worker_hit = per_worker_stats.tile_cache.hit_rate(),
        per_worker_shards = shards_json(&per_worker_stats.tile_cache_shards),
        fixed_fraction = fixed_load.offered_fraction,
        fixed_p50 = fixed_load.run.latency.p50_us,
        fixed_p99 = fixed_load.run.latency.p99_us,
        fixed_p999 = fixed_load.run.latency.p999_us,
    );

    // Floors before persisting, so a failed acceptance run can never
    // overwrite the checked-in numbers with its own. Wall-clock ratios on
    // shared machines are noisy; CI lowers the bar via the env knobs.
    let min_speedup = env_f64("PHI_SERVER_MIN_SPEEDUP", 3.0);
    assert!(
        speedup >= min_speedup,
        "dynamic batching at {} clients ({:.1} inf/s) must be at least {min_speedup}x \
         per-request batch-1 serving ({batch1_inf_s:.1} inf/s), got {speedup:.2}x",
        headline.clients,
        headline.server_inf_s,
    );
    if worker_floor_checked {
        assert!(
            worker_speedup >= worker_floor,
            "{workers_multi} workers ({multi_inf_s:.1} inf/s) must be at least \
             {worker_floor}x one worker ({single_inf_s:.1} inf/s) on a {cores}-core host, \
             got {worker_speedup:.2}x"
        );
    }
    if let Some(d) = &drift {
        // The recovery floor holds on full runs; smoke volumes are too
        // small for a stable wall-clock ratio (the bit-identity, swap,
        // and rollback asserts inside the track stay hard either way).
        if !smoke && drift_floor > 0.0 {
            assert!(
                d.recovered_inf_s >= drift_floor * d.baseline_inf_s,
                "post-recalibration serving ({:.1} inf/s) must recover to at least \
                 {drift_floor}x the pre-drift baseline ({:.1} inf/s), got {:.2}x",
                d.recovered_inf_s,
                d.baseline_inf_s,
                d.recovered_inf_s / d.baseline_inf_s,
            );
        }
    }
    if stream_floor > 0.0 {
        assert!(
            stream_speedup >= stream_floor,
            "incremental streaming at δ={STREAM_GATED_DELTA:.2} ({:.1} fr/s) must be at least \
             {stream_floor}x full re-decomposition ({:.1} fr/s), got {stream_speedup:.2}x",
            gated.stream_inf_s,
            gated.full_inf_s,
        );
    }
    if smoke {
        println!("PHI_SERVER_SMOKE=1: smoke complete, BENCH_server.json left untouched");
        return;
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_server.json");
    std::fs::write(&path, json).expect("write BENCH_server.json");
    println!("wrote {}", path.display());
}
