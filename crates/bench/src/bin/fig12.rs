//! Figure 12: memory traffic reduction.
//!
//! * (a) activation traffic — dense (Spiking Eyeriss) vs Phi without the
//!   compact pack structure vs Phi with it, normalized to dense;
//! * (b) weight traffic — dense weights vs Phi without the PWP prefetcher
//!   vs with it, normalized to dense weights.
//!
//! Run: `cargo run --release -p phi-bench --bin fig12`

use phi_analysis::Table;
use phi_bench::{fmt, results_dir, ExperimentScale};
use phi_snn::pipeline::run_phi_workload;
use snn_workloads::{DatasetId, ModelId};

fn main() {
    let scale = ExperimentScale::from_env();
    let pipeline = scale.pipeline();

    let pairs: [(ModelId, DatasetId); 6] = [
        (ModelId::Vgg16, DatasetId::Cifar100),
        (ModelId::ResNet18, DatasetId::Cifar100),
        (ModelId::Spikformer, DatasetId::Cifar100),
        (ModelId::Sdt, DatasetId::Cifar100),
        (ModelId::SpikeBert, DatasetId::Sst2),
        (ModelId::SpikingBert, DatasetId::Sst2),
    ];

    let mut act_table = Table::new(
        "Fig 12a: activation traffic (normalized to dense)",
        &["Model", "dense", "Phi w/o compress", "Phi w compress"],
    );
    let mut weight_table = Table::new(
        "Fig 12b: weight traffic (normalized to dense weights)",
        &["Model", "dense", "Phi w/o prefetch", "Phi w prefetch", "PWP utilization"],
    );

    let mut geo = [0.0f64; 4];
    for (model, dataset) in pairs {
        let workload = scale.workload(model, dataset);
        let report = run_phi_workload(&workload, &pipeline);
        let t = report.total_traffic();

        let act_no = t.act_uncompressed / t.act_dense;
        let act_yes = t.act_compressed / t.act_dense;
        act_table.row_owned(vec![
            model.to_string(),
            "1.00".into(),
            fmt(act_no, 2),
            fmt(act_yes, 2),
        ]);

        let w_no = (t.weight_dense + t.pwp_no_prefetch) / t.weight_dense;
        let w_yes = (t.weight_dense + t.pwp_prefetch) / t.weight_dense;
        weight_table.row_owned(vec![
            model.to_string(),
            "1.00".into(),
            fmt(w_no, 2),
            fmt(w_yes, 2),
            fmt(t.pwp_utilization(), 3),
        ]);
        geo[0] += act_no.ln();
        geo[1] += act_yes.ln();
        geo[2] += w_no.ln();
        geo[3] += w_yes.ln();
    }
    let n = pairs.len() as f64;
    act_table.row_owned(vec![
        "Geomean".into(),
        "1.00".into(),
        fmt((geo[0] / n).exp(), 2),
        fmt((geo[1] / n).exp(), 2),
    ]);
    weight_table.row_owned(vec![
        "Geomean".into(),
        "1.00".into(),
        fmt((geo[2] / n).exp(), 2),
        fmt((geo[3] / n).exp(), 2),
        "".into(),
    ]);

    println!("{act_table}");
    println!("{weight_table}");
    act_table.write_csv(results_dir().join("fig12a.csv")).expect("write fig12a.csv");
    weight_table.write_csv(results_dir().join("fig12b.csv")).expect("write fig12b.csv");
    println!("paper shape: compression roughly halves activation traffic; prefetching cuts PWP traffic from ~9x to ~3x dense weights");
}
