//! Figure 9 (and the Fig. 1 context): t-SNE visualizations of activation
//! rows.
//!
//! * Fig 9a — calibration ("train") vs runtime ("test") activations of the
//!   same layer share the cluster structure;
//! * Fig 9b/9c — test activations without vs with PAFT: PAFT makes
//!   clusters fewer and denser;
//! * Fig 1 — random noise vs DNN-like continuous activations vs SNN binary
//!   activations: SNN rows are the most clustered.
//!
//! Embeddings are written as CSV (x, y, group); cluster quality is
//! quantified with neighborhood compactness (lower = more clustered).
//!
//! Run: `cargo run --release -p phi-bench --bin fig9`

use phi_analysis::tsne::{Tsne, TsneConfig};
use phi_analysis::{neighborhood_compactness, scatter, Table};
use phi_bench::{fmt, results_dir, ExperimentScale};
use phi_core::AlignmentModel;
use phi_snn::pipeline::calibrate_layer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_core::SpikeMatrix;
use snn_workloads::{DatasetId, ModelId};

fn rows_as_points(m: &SpikeMatrix, limit: usize) -> Vec<Vec<f32>> {
    (0..m.rows().min(limit)).map(|r| m.row_to_f32(r)).collect()
}

fn to_f64(points: &[[f64; 2]]) -> Vec<Vec<f64>> {
    points.iter().map(|p| p.to_vec()).collect()
}

fn write_embedding(name: &str, groups: &[(&str, &[[f64; 2]])]) {
    let mut table = Table::new(name, &["x", "y", "group"]);
    for (group, points) in groups {
        for p in *points {
            table.row_owned(vec![fmt(p[0], 4), fmt(p[1], 4), group.to_string()]);
        }
    }
    let path = results_dir().join(format!("{name}.csv"));
    table.write_csv(&path).expect("write embedding csv");
    println!("wrote {}", path.display());
}

fn main() {
    let scale = ExperimentScale::from_env();
    let limit = if std::env::var_os("PHI_SMOKE").is_some() { 120 } else { 400 };
    let workload = scale.workload(ModelId::Vgg16, DatasetId::Cifar100);
    // A mid-network conv layer has enough width for visible structure.
    let layer = &workload.layers[4];
    let tsne = Tsne::new(TsneConfig { iterations: 250, perplexity: 25.0, ..Default::default() });
    let mut rng = StdRng::seed_from_u64(99);

    // --- Fig 9a: train vs test -------------------------------------------
    let train_pts = rows_as_points(&layer.calibration, limit);
    let test_pts = rows_as_points(&layer.activations, limit);
    let mut joint = train_pts.clone();
    joint.extend(test_pts.iter().cloned());
    let embedding = tsne.embed(&joint, &mut rng);
    let (train_emb, test_emb) = embedding.split_at(train_pts.len());
    write_embedding("fig9a_train_vs_test", &[("train", train_emb), ("test", test_emb)]);

    // --- Fig 9b/9c: PAFT effect ------------------------------------------
    let pipeline = scale.pipeline();
    let patterns = calibrate_layer(layer, &pipeline.calibration, 99);
    let aligned = AlignmentModel::new(0.6).align(&layer.activations, &patterns, &mut rng);
    let no_paft_pts = rows_as_points(&layer.activations, limit);
    let paft_pts = rows_as_points(&aligned, limit);
    let emb_no = tsne.embed(&no_paft_pts, &mut rng);
    let emb_paft = tsne.embed(&paft_pts, &mut rng);
    write_embedding("fig9b_no_paft", &[("test", &emb_no)]);
    write_embedding("fig9c_with_paft", &[("test", &emb_paft)]);

    // --- Fig 1 context: noise vs DNN vs SNN ------------------------------
    let dims = layer.activations.cols();
    let noise_pts: Vec<Vec<f32>> =
        (0..limit).map(|_| (0..dims).map(|_| rng.gen::<f32>()).collect()).collect();
    // DNN-like: continuous activations around per-cluster means (smooth,
    // weaker structure than binary spikes).
    let dnn_pts: Vec<Vec<f32>> = (0..limit)
        .map(|i| {
            let center = (i % 6) as f32 * 0.15;
            (0..dims).map(|_| (center + rng.gen::<f32>()).min(1.0)).collect()
        })
        .collect();
    let emb_noise = tsne.embed(&noise_pts, &mut rng);
    let emb_dnn = tsne.embed(&dnn_pts, &mut rng);
    write_embedding("fig1_noise", &[("noise", &emb_noise)]);
    write_embedding("fig1_dnn", &[("dnn", &emb_dnn)]);
    write_embedding("fig1_snn", &[("snn", &emb_no)]);

    // --- Terminal rendering (the paper's scatter panels) -----------------
    println!("Fig 9a: train (.) vs test (o) activations share cluster structure");
    let joint_labels: Vec<usize> =
        (0..train_emb.len()).map(|_| 0).chain((0..test_emb.len()).map(|_| 1)).collect();
    println!("{}\n", scatter(&embedding, &joint_labels, &['.', 'o'], 68, 20));
    println!("Fig 1a (noise) vs Fig 1c (SNN): structure emerges only for spikes");
    let noise_labels = vec![0usize; emb_noise.len()];
    println!("{}", scatter(&emb_noise, &noise_labels, &['x'], 68, 14));
    let snn_labels = vec![0usize; emb_no.len()];
    println!("{}\n", scatter(&emb_no, &snn_labels, &['*'], 68, 14));

    // --- Quantification ----------------------------------------------------
    let mut table = Table::new(
        "Fig 9 / Fig 1 cluster quality (neighborhood compactness; lower = more clustered)",
        &["embedding", "compactness"],
    );
    let k = 8;
    for (name, emb) in [
        ("normal noise (Fig 1a)", &emb_noise),
        ("DNN-like (Fig 1b)", &emb_dnn),
        ("SNN activations (Fig 1c)", &emb_no),
        ("SNN train split (Fig 9a)", &train_emb.to_vec()),
        ("SNN test, no PAFT (Fig 9b)", &emb_no),
        ("SNN test, with PAFT (Fig 9c)", &emb_paft),
    ] {
        let c = neighborhood_compactness(&to_f64(emb), k).unwrap_or(f64::NAN);
        table.row_owned(vec![name.to_owned(), fmt(c, 4)]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig9_metrics.csv")).expect("write fig9_metrics.csv");
    println!("paper shape: SNN < DNN < noise in compactness; PAFT compacts further; train and test overlap");
}
