//! Ablations of Phi's design choices (the ones DESIGN.md calls out):
//!
//! * pattern selection: Hamming k-means (Alg. 1) vs greedy-by-frequency;
//! * packer windows: 4 vs 1 (forced flushes, pack occupancy);
//! * psum banks: 8 vs 2 (conflict-driven fragmentation);
//! * matcher lanes: 4 vs 1 (preprocessing hiding);
//! * prefetch / compression: on vs off (traffic and cycles);
//! * §6.2 extension: Phi on 4-bit bit-sliced DNN activations.
//!
//! Run: `cargo run --release -p phi-bench --bin ablation`

use phi_accel::PhiConfig;
use phi_analysis::Table;
use phi_bench::{fmt, pct, ratio, results_dir, ExperimentScale};
use phi_core::kmeans::total_distance;
use phi_core::{
    greedy_frequent_patterns, hamming_kmeans, BitSlicedMatrix, BitSlicedPhi, CalibrationConfig,
    KmeansConfig,
};
use phi_snn::pipeline::{run_phi_workload, PipelineConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_core::Matrix;
use snn_workloads::{activation_profile, generate_clustered, DatasetId, ModelId};

fn main() {
    pattern_selection_ablation();
    architecture_ablation();
    bitslice_extension();
}

/// k-means vs greedy-by-frequency at several pattern budgets.
fn pattern_selection_ablation() {
    let mut rng = StdRng::seed_from_u64(7);
    let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
    let (acts, _) = generate_clustered(4096, 16, &profile, 16, &mut rng);
    let tiles: Vec<u64> = (0..acts.rows())
        .map(|r| acts.tile(r, 0, 16))
        .filter(|&t| t != 0 && t & (t - 1) != 0)
        .collect();

    let mut table = Table::new(
        "Ablation: pattern selection objective (total Hamming distance; lower is better)",
        &["q", "k-means (Alg. 1)", "greedy by frequency", "k-means advantage"],
    );
    for q in [4usize, 16, 64, 128] {
        let centers =
            hamming_kmeans(&tiles, 16, KmeansConfig { clusters: q, max_iters: 25 }, &mut rng);
        let km = total_distance(&tiles, &centers);
        let greedy_centers = greedy_frequent_patterns(&tiles, 16, q);
        let gr = total_distance(&tiles, &greedy_centers);
        table.row_owned(vec![
            q.to_string(),
            km.to_string(),
            gr.to_string(),
            ratio(gr as f64 / km.max(1) as f64),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("ablation_selection.csv")).expect("csv");
}

/// Hardware design-choice sweep on the VGG16 workload.
fn architecture_ablation() {
    let scale = ExperimentScale::from_env();
    let workload = scale.workload(ModelId::Vgg16, DatasetId::Cifar100);
    let base = scale.pipeline();
    let freq = base.accelerator.frequency_hz;

    let variants: Vec<(&str, PhiConfig)> = vec![
        ("baseline (Table 1)", PhiConfig::default()),
        ("packer windows = 1", PhiConfig { packer_windows: 1, ..Default::default() }),
        ("psum banks = 2", PhiConfig { psum_banks: 2, ..Default::default() }),
        ("matcher lanes = 1", PhiConfig { matcher_lanes: 1, ..Default::default() }),
        ("no PWP prefetch", PhiConfig { prefetch: false, ..Default::default() }),
        ("no compression", PhiConfig { compress: false, ..Default::default() }),
    ];

    let mut table = Table::new(
        "Ablation: architecture variants (VGG16/CIFAR100)",
        &["variant", "GOP/s", "GOP/J", "vs baseline speed"],
    );
    let mut baseline_gops = None;
    for (name, accel) in variants {
        let pipeline = PipelineConfig { accelerator: accel, ..base.clone() };
        let report = run_phi_workload(&workload, &pipeline);
        let gops = report.throughput_gops(freq);
        let base_gops = *baseline_gops.get_or_insert(gops);
        table.row_owned(vec![
            name.to_owned(),
            fmt(gops, 1),
            fmt(report.gops_per_joule(), 1),
            ratio(gops / base_gops),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("ablation_architecture.csv")).expect("csv");
}

/// §6.2: Phi applied to 4-bit bit-sliced DNN activations.
fn bitslice_extension() {
    let mut rng = StdRng::seed_from_u64(17);
    // Magnitude-skewed "post-ReLU" activations quantized to 4 bits.
    let float_acts = Matrix::from_fn(512, 256, |_, _| {
        let v: f32 = rng.gen();
        (v * v * v).min(1.0)
    });
    let acts = BitSlicedMatrix::quantize(&float_acts, 4).expect("quantize");
    let calib_acts = {
        let floats = Matrix::from_fn(512, 256, |_, _| {
            let v: f32 = rng.gen();
            (v * v * v).min(1.0)
        });
        BitSlicedMatrix::quantize(&floats, 4).expect("quantize")
    };
    let phi = BitSlicedPhi::new(
        &acts,
        &calib_acts,
        CalibrationConfig { q: 64, max_iters: 10, ..Default::default() },
        &mut rng,
    );
    let stats = phi.stats();

    let mut table = Table::new(
        "Extension (6.2): Phi on 4-bit bit-sliced DNN activations",
        &["quantity", "value"],
    );
    table.row_owned(vec!["mean plane bit density".into(), pct(acts.mean_plane_density())]);
    table.row_owned(vec!["Phi L2 density".into(), pct(stats.element_density())]);
    table.row_owned(vec![
        "theoretical speedup over bit-level sparsity".into(),
        ratio(stats.speedup_over_bit()),
    ]);
    table.row_owned(vec![
        "theoretical speedup over dense".into(),
        ratio(stats.speedup_over_dense()),
    ]);
    // Exactness of the extension's GEMM.
    let weights = Matrix::random(256, 32, &mut rng);
    let via_phi = phi.matmul(&weights).expect("phi gemm");
    let dense = acts.dense_matmul(&weights).expect("dense gemm");
    let diff = via_phi.max_abs_diff(&dense).expect("shape");
    table.row_owned(vec!["|phi - dense|_max".into(), format!("{diff:.2e}")]);
    println!("{table}");
    table.write_csv(results_dir().join("ablation_bitslice.csv")).expect("csv");
    println!(
        "paper 6.2: bit-sliced binary planes are Phi's input domain; patterns emerge there too"
    );
}
