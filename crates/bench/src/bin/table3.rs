//! Table 3: Phi area and power breakdown (28 nm synthesis constants the
//! energy model is anchored to, plus the buffer scaling the model applies
//! at non-default capacities).
//!
//! Run: `cargo run --release -p phi-bench --bin table3`

use phi_accel::{EnergyModel, PhiConfig};
use phi_analysis::Table;
use phi_bench::{fmt, results_dir};

fn main() {
    let config = PhiConfig::default();
    let model = EnergyModel::default();
    let area = model.area(&config);

    let mut table = Table::new(
        "Table 3: Phi area and power breakdown (28 nm, 500 MHz)",
        &["Component", "Area (mm2)", "Power (mW)"],
    );
    table.row_owned(vec![
        "Preprocessor".into(),
        fmt(area.preprocessor, 3),
        fmt(model.preprocessor_mw, 1),
    ]);
    table.row_owned(vec!["L1 Processor".into(), fmt(area.l1, 3), fmt(model.l1_mw, 1)]);
    table.row_owned(vec!["L2 Processor".into(), fmt(area.l2, 3), fmt(model.l2_mw, 1)]);
    table.row_owned(vec!["LIF Neuron".into(), fmt(area.lif, 3), fmt(model.lif_mw, 1)]);
    table.row_owned(vec![
        "Buffer".into(),
        fmt(area.buffer, 3),
        fmt(model.buffer_power_mw(config.total_buffer_bytes()), 1),
    ]);
    let total_power = model.preprocessor_mw
        + model.l1_mw
        + model.l2_mw
        + model.lif_mw
        + model.buffer_power_mw(config.total_buffer_bytes());
    table.row_owned(vec!["Total".into(), fmt(area.total(), 3), fmt(total_power, 1)]);
    println!("{table}");

    let csv = results_dir().join("table3.csv");
    table.write_csv(&csv).expect("write table3.csv");
    println!("paper reference: total 0.662 mm2 / 346.6 mW");
    println!("csv: {}", csv.display());
}
