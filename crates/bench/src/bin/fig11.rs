//! Figure 11: accuracy of the DNN counterpart, the bit-sparsity SNN, Phi
//! without PAFT, and Phi with PAFT.
//!
//! Unlike the density experiments (which use the statistical workload
//! generator), accuracy requires a *real* trained network, so this binary
//! trains the from-scratch surrogate-gradient SNN of `snn-core` on the
//! prototype dataset, verifies Phi's losslessness on its activations, and
//! runs PAFT as actual fine-tuning with the Hamming regularizer — the same
//! four bars as the paper at laptop scale:
//!
//! * **DNN** — a float MLP with identical topology (reference ceiling);
//! * **Bit sparsity** — the trained SNN evaluated directly;
//! * **Phi w/o PAFT** — identical to bit sparsity by construction
//!   (decomposition is lossless; asserted, not assumed);
//! * **Phi w PAFT** — after fine-tuning with the pattern regularizer,
//!   slightly lower accuracy, visibly lower Level-2 density.
//!
//! Run: `cargo run --release -p phi-bench --bin fig11`

use phi_analysis::Table;
use phi_bench::{fmt, pct, results_dir};
use phi_core::{decompose, CalibrationConfig, Calibrator, PaftRegularizer, PwpTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::dataset::{prototype_dataset, split, PrototypeConfig};
use snn_core::network::SnnNetwork;
use snn_core::train::{evaluate, record_activations, train, SgdConfig};
use snn_core::{LifConfig, Matrix, SpikeMatrix};

/// Trains a float ReLU MLP of the same topology as the SNN (the "DNN
/// counterpart" bar). Plain SGD on softmax cross-entropy.
fn train_dnn(
    data: &snn_core::dataset::Dataset,
    test: &snn_core::dataset::Dataset,
    hidden: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> f64 {
    let d_in = data.inputs.cols();
    let classes = data.num_classes;
    let mut w1 = Matrix::kaiming(d_in, hidden, rng);
    let mut w2 = Matrix::kaiming(hidden, classes, rng);
    let lr = 0.1f32;
    for _ in 0..epochs {
        for start in (0..data.len()).step_by(32) {
            let idx: Vec<usize> = (start..(start + 32).min(data.len())).collect();
            let (x, labels) = data.batch(&idx);
            let h_pre = x.matmul(&w1).expect("shapes fixed");
            let h = Matrix::from_fn(h_pre.rows(), h_pre.cols(), |r, c| h_pre[(r, c)].max(0.0));
            let logits = h.matmul(&w2).expect("shapes fixed");
            // Softmax CE gradient.
            let mut dlogits = Matrix::zeros(logits.rows(), logits.cols());
            for r in 0..logits.rows() {
                let row = logits.row(r);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                for c in 0..row.len() {
                    dlogits[(r, c)] =
                        (exps[c] / sum - if c == labels[r] { 1.0 } else { 0.0 }) / idx.len() as f32;
                }
            }
            let dw2 = h.transpose().matmul(&dlogits).expect("shapes fixed");
            let dh = dlogits.matmul(&w2.transpose()).expect("shapes fixed");
            let dh_relu = Matrix::from_fn(dh.rows(), dh.cols(), |r, c| {
                if h_pre[(r, c)] > 0.0 {
                    dh[(r, c)]
                } else {
                    0.0
                }
            });
            let dw1 = x.transpose().matmul(&dh_relu).expect("shapes fixed");
            w1.add_scaled(&dw1, -lr);
            w2.add_scaled(&dw2, -lr);
        }
    }
    // Evaluate.
    let idx: Vec<usize> = (0..test.len()).collect();
    let (x, labels) = test.batch(&idx);
    let h_pre = x.matmul(&w1).expect("shapes fixed");
    let h = Matrix::from_fn(h_pre.rows(), h_pre.cols(), |r, c| h_pre[(r, c)].max(0.0));
    let logits = h.matmul(&w2).expect("shapes fixed");
    let correct = (0..test.len())
        .filter(|&r| {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .unwrap_or(0);
            pred == labels[r]
        })
        .count();
    correct as f64 / test.len() as f64
}

fn element_density(net: &SnnNetwork, data: &snn_core::dataset::Dataset, seed: u64) -> f64 {
    let acts = record_activations(net, data).expect("record activations");
    let spikes = SpikeMatrix::from_matrix_threshold(&acts[0], 0.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CalibrationConfig { q: 32, ..Default::default() };
    let patterns = Calibrator::new(config).calibrate(&spikes, &mut rng);
    decompose(&spikes, &patterns).stats().element_density()
}

fn main() {
    let smoke = std::env::var_os("PHI_SMOKE").is_some();
    let mut rng = StdRng::seed_from_u64(2024);
    // Harder than the unit-test dataset (more classes, heavier noise,
    // fewer informative features) so the four bars separate like the
    // paper's Fig. 11 instead of saturating.
    let data = prototype_dataset(
        PrototypeConfig {
            features: 48,
            classes: 6,
            samples: if smoke { 300 } else { 720 },
            noise: 0.22,
            active_fraction: 0.22,
        },
        &mut rng,
    );
    let (train_set, test_set) = split(&data, 0.25);
    let hidden = 64;
    let epochs = if smoke { 6 } else { 20 };

    // DNN counterpart.
    let dnn_acc = train_dnn(&train_set, &test_set, hidden, epochs, &mut rng);

    // Bit-sparsity SNN.
    let mut net = SnnNetwork::new(48, &[hidden], 6, 4, LifConfig::default(), &mut rng);
    let sgd = SgdConfig { lr: 0.05, momentum: 0.9, batch_size: 16 };
    train(&mut net, &train_set, &sgd, epochs, None, &mut rng).expect("train SNN");
    let snn_acc = evaluate(&net, &test_set).expect("evaluate SNN");
    let density_before = element_density(&net, &test_set, 1);

    // Phi w/o PAFT: verify losslessness on real activations instead of
    // assuming it — the decomposed GEMM must equal the dense spike GEMM.
    let acts = record_activations(&net, &test_set).expect("record activations");
    let spikes = SpikeMatrix::from_matrix_threshold(&acts[0], 0.5);
    let config = CalibrationConfig { q: 32, ..Default::default() };
    let patterns = Calibrator::new(config).calibrate(&spikes, &mut StdRng::seed_from_u64(3));
    let decomp = decompose(&spikes, &patterns);
    assert!(decomp.verify_lossless(&spikes), "Phi decomposition must be lossless");
    let weights = &net.layers()[1].weights;
    let pwp = PwpTable::new(&patterns, weights).expect("pwp");
    let phi_out = phi_core::phi_matmul(&decomp, &pwp, weights).expect("phi gemm");
    let dense_out = spikes.spike_matmul(weights).expect("dense gemm");
    let gemm_diff = phi_out.max_abs_diff(&dense_out).expect("same shape");
    assert!(gemm_diff < 1e-3, "functional GEMM diverged by {gemm_diff}");
    let phi_acc = snn_acc; // lossless by verified construction

    // Phi with PAFT: fine-tune with the Hamming regularizer at the paper's
    // recommended strength, and once more with an aggressive λ to map the
    // accuracy/efficiency frontier §3.3 describes (higher λ → patterns more
    // pronounced → lower density, eventually at accuracy cost).
    let mut paft_net = net.clone();
    let reg = PaftRegularizer::new(vec![patterns.clone()], vec![6], 2e-4);
    let paft_sgd = SgdConfig { lr: 0.01, momentum: 0.9, batch_size: 16 };
    train(&mut paft_net, &train_set, &paft_sgd, 5, Some(&reg), &mut rng).expect("PAFT fine-tune");
    let paft_acc = evaluate(&paft_net, &test_set).expect("evaluate PAFT");
    let density_after = element_density(&paft_net, &test_set, 1);

    let mut aggressive_net = net.clone();
    let strong_reg = PaftRegularizer::new(vec![patterns.clone()], vec![6], 4e-3);
    train(&mut aggressive_net, &train_set, &paft_sgd, 8, Some(&strong_reg), &mut rng)
        .expect("aggressive PAFT");
    let aggressive_acc = evaluate(&aggressive_net, &test_set).expect("evaluate");
    let density_aggressive = element_density(&aggressive_net, &test_set, 1);

    let mut table = Table::new(
        "Fig 11: accuracy (real trained SNN, prototype dataset)",
        &["Variant", "Accuracy", "L2 element density"],
    );
    table.row_owned(vec!["DNN counterpart".into(), pct(dnn_acc), "-".into()]);
    table.row_owned(vec!["Bit sparsity (SNN)".into(), pct(snn_acc), pct(density_before)]);
    table.row_owned(vec!["Phi w/o PAFT".into(), pct(phi_acc), pct(density_before)]);
    table.row_owned(vec!["Phi w PAFT".into(), pct(paft_acc), pct(density_after)]);
    table.row_owned(vec![
        "Phi w PAFT (aggressive lambda)".into(),
        pct(aggressive_acc),
        pct(density_aggressive),
    ]);
    println!("{table}");
    println!("functional check: |phi_gemm - dense_gemm|_max = {}", fmt(gemm_diff as f64, 6));
    table.write_csv(results_dir().join("fig11.csv")).expect("write fig11.csv");
    println!("paper shape: Phi w/o PAFT == bit sparsity exactly; PAFT trades ~1% accuracy for lower density");
}
