//! Serving benchmark: the compiled-artifact batched runtime — on both
//! execution backends — against the status-quo single-request path,
//! written to `BENCH_serving.json` at the repository root.
//!
//! Three engines serve the same 64 requests drawn from the VGG-16 /
//! CIFAR-10 serving distribution (4 subsampled rows per layer per request
//! — one inference trace at T = 4, extrapolated to full scale inside the
//! simulator):
//!
//! * **single-request (recalibrate)** — what the repo did before the
//!   runtime existed: every request re-derives patterns
//!   (calibrate → decompose → simulate per input). This is the paper's
//!   offline work incorrectly paid online, and the baseline the compiled
//!   artifact amortizes away.
//! * **batched, sim backend** — compile once, then serve through
//!   [`phi_runtime::BatchExecutor`] over the default
//!   [`phi_runtime::SimBackend`] at batch sizes 1 / 8 / 64: full
//!   cycle-accurate accounting per batch.
//! * **batched, CPU backend** — the same executor over
//!   [`phi_runtime::CpuBackend`]: outputs only through the
//!   rayon-parallel PWP matmul, no simulator bookkeeping on the hot path.
//!
//! Alongside wall-clock throughput the run reports simulated p50/p99
//! latency and energy per inference from the sim-backend batch-64 report,
//! verifies the artifact's byte-identical serialization roundtrip, asserts
//! that sim-backend batched readouts equal the sequential single-input
//! path exactly, asserts the CPU backend's readouts are bit-identical
//! to the sim path, and asserts a tile-cache-disabled executor
//! (`PHI_TILE_CACHE=0` equivalent) serves the same bits as the cached
//! one — alongside the cached executor's hit/miss/eviction counters.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_serving`.
//! Environment knobs:
//!
//! * `PHI_BENCH_RUNS` — repetition count (default 5; median reported).
//! * `PHI_SERVING_TRACKS=cpu` — CPU-backend smoke: skip the recalibrating
//!   baseline and the sim-backend throughput sweep (the sim path still
//!   runs once as the bit-identity anchor) and do not rewrite
//!   `BENCH_serving.json`.
//! * `PHI_SERVING_MIN_SPEEDUP` — floor for batched-vs-recalibrate
//!   (default 4; 0 disables).
//! * `PHI_SERVING_MIN_CPU_SPEEDUP` — floor for CPU-vs-sim backend at
//!   batch 64 (default 2; 0 disables).
//!
//! The CPU track additionally times batch-64 serving with the
//! product-sparsity reuse pass forced off and on (interleaved, fastest
//! repetition each), asserts the two serve bit-identical readouts, and
//! records the executor's cumulative [`phi_runtime::ReuseStats`]. The
//! speedup floor for the reuse pass lives in `bench_pipeline`
//! (`PHI_PIPELINE_MIN_REUSE_SPEEDUP`); here the A/B is recorded, not
//! gated, because serving wall-clock also pays intake and fusion.

use phi_bench::{bench_runs, env_f64, median};
use phi_runtime::{
    force_reuse, readouts_identical, BatchExecutor, CompileOptions, CompiledModel,
    InferenceRequest, ModelCompiler, ReuseMode,
};
use snn_workloads::{DatasetId, ModelId, WorkloadConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per layer per request: one inference trace at T = 4 timesteps.
const ROWS_PER_REQUEST: usize = 4;
/// Requests served per measurement.
const REQUESTS: usize = 64;
/// Requests used to time the (slow) recalibrating baseline.
const BASELINE_REQUESTS: usize = 8;
/// Batch sizes swept per backend.
const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn time_runs(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    median(
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect(),
    )
}

/// Times variants round-robin — variant 0, 1, …, then variant 0 again —
/// taking each variant's *fastest* repetition: the two sides of a
/// ratio must sample the same interference epochs, or background-load
/// drift shows up as a phantom speedup (same rationale as
/// `bench_pipeline`).
fn time_interleaved(runs: usize, fs: &mut [&mut dyn FnMut()]) -> Vec<Duration> {
    for f in fs.iter_mut() {
        f(); // warm-up
    }
    let mut mins = vec![Duration::MAX; fs.len()];
    for _ in 0..runs {
        for (min, f) in mins.iter_mut().zip(fs.iter_mut()) {
            let start = Instant::now();
            f();
            let elapsed = start.elapsed();
            *min = (*min).min(elapsed);
        }
    }
    mins
}

/// Times one executor over the batch-size sweep, returning inf/s per size.
fn sweep<B: phi_runtime::ExecutionBackend>(
    label: &str,
    executor: &BatchExecutor<B>,
    requests: &[InferenceRequest],
    runs: usize,
) -> Vec<(usize, f64)> {
    BATCH_SIZES
        .iter()
        .map(|&batch_size| {
            let elapsed = time_runs(runs, || {
                for chunk in requests.chunks(batch_size) {
                    std::hint::black_box(executor.execute(chunk).expect("batch serves"));
                }
            });
            let inf_s = REQUESTS as f64 / elapsed.as_secs_f64();
            println!("  {label} batch {batch_size:>2}: {inf_s:.1} inf/s");
            (batch_size, inf_s)
        })
        .collect()
}

fn main() {
    let runs = bench_runs();
    let cpu_only = std::env::var("PHI_SERVING_TRACKS").is_ok_and(|t| t == "cpu");
    println!("generating VGG-16 / CIFAR-10 workload...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let compiler = ModelCompiler::new(CompileOptions::default());

    // Offline stage: compile once, measure it, and verify the artifact's
    // serialization roundtrip is byte-identical.
    println!("compiling model artifact ({runs} runs)...");
    let compile_time = time_runs(runs, || {
        std::hint::black_box(compiler.compile(&workload));
    });
    let artifact = compiler.compile(&workload);
    let bytes = artifact.to_bytes();
    let reloaded = CompiledModel::from_bytes(&bytes).expect("own artifact must load");
    let roundtrip_identical = reloaded.to_bytes() == bytes;
    println!(
        "  compile: {compile_time:?}, artifact {} bytes ({} patterns), roundtrip byte-identical: {roundtrip_identical}",
        bytes.len(),
        artifact.total_patterns(),
    );
    assert!(roundtrip_identical, "artifact roundtrip must be byte-identical");

    let requests: Vec<InferenceRequest> = workload
        .sample_requests(REQUESTS, ROWS_PER_REQUEST, 0xBA7C4)
        .into_iter()
        .map(InferenceRequest::new)
        .collect();
    let model = Arc::new(reloaded);
    let sim_executor = BatchExecutor::new(Arc::clone(&model));
    let cpu_executor = BatchExecutor::cpu(Arc::clone(&model));

    // The sim-path reference report (batch 64, full simulation): the
    // bit-identity anchor for the CPU track and the source of the
    // simulated serving metrics.
    let sim_report = sim_executor.execute(&requests).expect("sim batch serves");

    // Status-quo baseline: every request re-derives patterns, exactly the
    // calibrate → decompose → simulate walk the repo performed per run
    // before the compiled artifact existed.
    let single_inf_s = (!cpu_only).then(|| {
        println!(
            "timing single-request path (recalibrate per request, {BASELINE_REQUESTS} requests)..."
        );
        let baseline_total = time_runs(runs, || {
            for request in &requests[..BASELINE_REQUESTS] {
                let one_shot = BatchExecutor::new(Arc::new(compiler.compile(&workload)));
                std::hint::black_box(one_shot.execute_one(request).expect("baseline serves"));
            }
        });
        let inf_s = BASELINE_REQUESTS as f64 / baseline_total.as_secs_f64();
        println!("  {inf_s:.1} inf/s ({:.3} ms/inf)", 1e3 / inf_s);
        inf_s
    });

    // The two backend tracks over the same requests and artifact.
    let sim_track = (!cpu_only).then(|| sweep("sim", &sim_executor, &requests, runs));
    let cpu_track = sweep("cpu", &cpu_executor, &requests, runs);
    let cpu64_inf_s = cpu_track.last().expect("three batch sizes").1;

    // Cross-backend exactness: the CPU backend's readouts must equal the
    // full simulation path bit for bit.
    let cpu_report = cpu_executor.execute(&requests).expect("cpu batch serves");
    let cpu_matches_sim = readouts_identical(&cpu_report, &sim_report);
    println!("cpu-backend outputs == sim-backend outputs: {cpu_matches_sim}");
    assert!(cpu_matches_sim, "CPU backend readouts must equal the sim path bit-for-bit");

    // Tile-cache exactness: an executor with decomposition caching
    // disabled must serve the same bits as the (cache-warm, after the
    // sweeps above) default executor.
    let uncached_executor = BatchExecutor::cpu(Arc::clone(&model)).with_tile_cache_capacity(0);
    let uncached_report = uncached_executor.execute(&requests).expect("uncached batch serves");
    let cached_matches_uncached = readouts_identical(&cpu_report, &uncached_report);
    let cache_stats = cpu_executor.tile_cache_stats();
    println!(
        "cached outputs == uncached outputs: {cached_matches_uncached} (hit rate {:.4}, {} \
         entries, {} evictions)",
        cache_stats.hit_rate(),
        cache_stats.entries,
        cache_stats.evictions
    );
    assert!(
        cached_matches_uncached,
        "tile-cached readouts must equal the cache-disabled path bit-for-bit"
    );

    // Product-sparsity A/B: batch-64 serving through a fresh CPU executor
    // with the reuse pass forced off and on, interleaved (fastest
    // repetition each). The fresh executor keeps the cumulative reuse
    // counters scoped to this track's reuse-on runs.
    println!("timing cpu batch-64 serving, reuse off vs on (interleaved, {runs} runs)...");
    let reuse_executor = BatchExecutor::cpu(Arc::clone(&model));
    let mut serve_off = || {
        let prev = force_reuse(ReuseMode::Off);
        std::hint::black_box(reuse_executor.execute(&requests).expect("batch serves"));
        force_reuse(prev);
    };
    let mut serve_on = || {
        let prev = force_reuse(ReuseMode::Auto);
        std::hint::black_box(reuse_executor.execute(&requests).expect("batch serves"));
        force_reuse(prev);
    };
    let reuse_times = time_interleaved(runs, &mut [&mut serve_off, &mut serve_on]);
    let reuse_off_inf_s = REQUESTS as f64 / reuse_times[0].as_secs_f64();
    let reuse_on_inf_s = REQUESTS as f64 / reuse_times[1].as_secs_f64();
    let serving_reuse_speedup = reuse_times[0].as_secs_f64() / reuse_times[1].as_secs_f64();
    println!(
        "  reuse off: {reuse_off_inf_s:.1} inf/s, reuse on: {reuse_on_inf_s:.1} inf/s \
         ({serving_reuse_speedup:.2}x)"
    );

    // Bit-identity between the two modes, through the full serving path.
    let prev = force_reuse(ReuseMode::Off);
    let report_off = reuse_executor.execute(&requests).expect("batch serves");
    force_reuse(ReuseMode::Auto);
    let report_on = reuse_executor.execute(&requests).expect("batch serves");
    force_reuse(prev);
    let reuse_matches = readouts_identical(&report_off, &report_on);
    println!("reuse-on outputs == reuse-off outputs: {reuse_matches}");
    assert!(reuse_matches, "reuse-pass readouts must equal the per-row path bit-for-bit");

    let mut reuse_stats = cpu_executor.reuse_stats();
    reuse_stats.merge(&reuse_executor.reuse_stats());
    println!(
        "cumulative reuse: rate {:.3}, loads/refs {:.3} ({} rows, {} products, {} prefix links)",
        reuse_stats.reuse_rate(),
        reuse_stats.term_loads as f64 / reuse_stats.term_rows_total.max(1) as f64,
        reuse_stats.rows,
        reuse_stats.products,
        reuse_stats.prefix_links,
    );

    if cpu_only {
        println!("PHI_SERVING_TRACKS=cpu: smoke complete, BENCH_serving.json left untouched");
        return;
    }
    let single_inf_s = single_inf_s.expect("baseline timed");
    let sim_track = sim_track.expect("sim track timed");

    let sim64_inf_s = sim_track.last().expect("three batch sizes").1;
    let speedup_vs_single = sim64_inf_s / single_inf_s;
    println!("sim-backend batched (64) vs single-request: {speedup_vs_single:.1}x");
    let speedup_cpu_vs_sim = cpu64_inf_s / sim64_inf_s;
    println!("cpu backend vs sim backend at batch 64: {speedup_cpu_vs_sim:.1}x");

    // Simulated serving metrics from the sim-backend batch-64 report.
    let p50 = sim_report.p50_cycles();
    let p99 = sim_report.p99_cycles();
    let energy_mj = sim_report.energy_per_inference_j() * 1e3;
    println!(
        "simulated per-inference: p50 {p50:.0} cycles, p99 {p99:.0} cycles, {energy_mj:.3} mJ"
    );

    // Exactness: batched readouts equal the sequential single-input path
    // bit for bit (the shared runtime helper).
    let exact =
        sim_executor.readouts_match_sequential(&requests, &sim_report).expect("sequential serves");
    println!("batch outputs == sequential single-input outputs: {exact}");

    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{
    "k": {artifact_k},
    "q": {artifact_q},
    "layers": {layers},
    "requests": {REQUESTS},
    "rows_per_request": {ROWS_PER_REQUEST},
    "baseline_requests": {BASELINE_REQUESTS}
  }},
  "runs": {runs},
  "threads": {threads},
  "compile_ms": {compile_ms:.3},
  "artifact_bytes": {artifact_bytes},
  "artifact_roundtrip_byte_identical": {roundtrip_identical},
  "single_request_recalibrate": {{ "inf_per_s": {single_inf_s:.3} }},
  "batched_compiled": {{
    "batch_1_inf_per_s": {s1:.3},
    "batch_8_inf_per_s": {s8:.3},
    "batch_64_inf_per_s": {s64:.3}
  }},
  "cpu_backend": {{
    "batch_1_inf_per_s": {c1:.3},
    "batch_8_inf_per_s": {c8:.3},
    "batch_64_inf_per_s": {c64:.3}
  }},
  "cpu_reuse": {{
    "batch_64_off_inf_per_s": {reuse_off_inf_s:.3},
    "batch_64_on_inf_per_s": {reuse_on_inf_s:.3},
    "serving_speedup": {serving_reuse_speedup:.3},
    "reuse_rate": {reuse_rate:.6},
    "term_loads_fraction": {loads_fraction:.6},
    "rows": {reuse_rows},
    "products": {reuse_products},
    "prefix_links": {reuse_prefix_links},
    "outputs_match_per_row": {reuse_matches}
  }},
  "speedup_batch64_vs_single_request": {speedup_vs_single:.3},
  "speedup_cpu_vs_sim_batch64": {speedup_cpu_vs_sim:.3},
  "tile_cache": {{
    "capacity": {cache_capacity},
    "hits": {cache_hits},
    "misses": {cache_misses},
    "evictions": {cache_evictions},
    "hit_rate": {cache_hit_rate:.6}
  }},
  "cached_outputs_match_uncached": {cached_matches_uncached},
  "simulated_per_inference": {{
    "p50_cycles": {p50:.1},
    "p99_cycles": {p99:.1},
    "energy_mj": {energy_mj:.6}
  }},
  "batch_outputs_match_sequential": {exact},
  "cpu_outputs_match_sim_backend": {cpu_matches_sim}
}}
"#,
        artifact_k = artifact.k(),
        artifact_q = artifact.q(),
        cache_capacity = cache_stats.capacity,
        cache_hits = cache_stats.hits,
        cache_misses = cache_stats.misses,
        cache_evictions = cache_stats.evictions,
        cache_hit_rate = cache_stats.hit_rate(),
        layers = workload.layers.len(),
        reuse_rate = reuse_stats.reuse_rate(),
        loads_fraction = reuse_stats.term_loads as f64 / reuse_stats.term_rows_total.max(1) as f64,
        reuse_rows = reuse_stats.rows,
        reuse_products = reuse_stats.products,
        reuse_prefix_links = reuse_stats.prefix_links,
        threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        compile_ms = compile_time.as_secs_f64() * 1e3,
        artifact_bytes = bytes.len(),
        s1 = sim_track[0].1,
        s8 = sim_track[1].1,
        s64 = sim64_inf_s,
        c1 = cpu_track[0].1,
        c8 = cpu_track[1].1,
        c64 = cpu64_inf_s,
    );
    // Assert before persisting, so a failed acceptance run can never
    // overwrite the checked-in numbers with its own.
    assert!(exact, "batched outputs must equal the sequential single-input path exactly");
    // Wall-clock ratios on shared machines are noisy; CI smoke runs lower
    // the bars via the env knobs (0 disables) while local/acceptance runs
    // keep the 4x / 2x floors.
    let min_speedup = env_f64("PHI_SERVING_MIN_SPEEDUP", 4.0);
    assert!(
        speedup_vs_single >= min_speedup,
        "batched throughput (batch 64: {sim64_inf_s:.1} inf/s) must be at least \
         {min_speedup}x the single-request path ({single_inf_s:.1} inf/s), got \
         {speedup_vs_single:.2}x"
    );
    let min_cpu_speedup = env_f64("PHI_SERVING_MIN_CPU_SPEEDUP", 2.0);
    assert!(
        speedup_cpu_vs_sim >= min_cpu_speedup,
        "CPU backend (batch 64: {cpu64_inf_s:.1} inf/s) must be at least {min_cpu_speedup}x \
         the sim backend ({sim64_inf_s:.1} inf/s), got {speedup_cpu_vs_sim:.2}x"
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    std::fs::write(&path, json).expect("write BENCH_serving.json");
    println!("wrote {}", path.display());
}
