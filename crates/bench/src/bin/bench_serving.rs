//! Serving benchmark: the compiled-artifact batched runtime against the
//! status-quo single-request path, written to `BENCH_serving.json` at the
//! repository root.
//!
//! Two engines serve the same 64 requests drawn from the VGG-16 / CIFAR-10
//! serving distribution (4 subsampled rows per layer per request — one
//! inference trace at T = 4, extrapolated to full scale inside the
//! simulator):
//!
//! * **single-request (recalibrate)** — what the repo did before the
//!   runtime existed: every request re-derives patterns
//!   (calibrate → decompose → simulate per input). This is the paper's
//!   offline work incorrectly paid online, and the baseline the compiled
//!   artifact amortizes away.
//! * **batched (compiled artifact)** — compile once, then serve through
//!   [`phi_runtime::BatchExecutor`] at batch sizes 1 / 8 / 64 over one
//!   shared `Arc`'d [`phi_runtime::CompiledModel`].
//!
//! Alongside wall-clock throughput the run reports simulated p50/p99
//! latency and energy per inference from the batch-64 report, verifies the
//! artifact's byte-identical serialization roundtrip, and asserts that
//! batched readout outputs equal the sequential single-input path exactly.
//!
//! Run with `cargo run --release -p phi_bench --bin bench_serving`
//! (`PHI_BENCH_RUNS` overrides the repetition count; default 5).

use phi_runtime::{BatchExecutor, CompileOptions, CompiledModel, InferenceRequest, ModelCompiler};
use snn_workloads::{DatasetId, ModelId, WorkloadConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rows per layer per request: one inference trace at T = 4 timesteps.
const ROWS_PER_REQUEST: usize = 4;
/// Requests served per measurement.
const REQUESTS: usize = 64;
/// Requests used to time the (slow) recalibrating baseline.
const BASELINE_REQUESTS: usize = 8;

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort_unstable();
    times[times.len() / 2]
}

fn time_runs(runs: usize, mut f: impl FnMut()) -> Duration {
    f(); // warm-up
    median(
        (0..runs)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed()
            })
            .collect(),
    )
}

fn main() {
    let runs: usize =
        std::env::var("PHI_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    println!("generating VGG-16 / CIFAR-10 workload...");
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).generate();
    let compiler = ModelCompiler::new(CompileOptions::default());

    // Offline stage: compile once, measure it, and verify the artifact's
    // serialization roundtrip is byte-identical.
    println!("compiling model artifact ({runs} runs)...");
    let compile_time = time_runs(runs, || {
        std::hint::black_box(compiler.compile(&workload));
    });
    let artifact = compiler.compile(&workload);
    let bytes = artifact.to_bytes();
    let reloaded = CompiledModel::from_bytes(&bytes).expect("own artifact must load");
    let roundtrip_identical = reloaded.to_bytes() == bytes;
    println!(
        "  compile: {compile_time:?}, artifact {} bytes ({} patterns), roundtrip byte-identical: {roundtrip_identical}",
        bytes.len(),
        artifact.total_patterns(),
    );

    let requests: Vec<InferenceRequest> = workload
        .sample_requests(REQUESTS, ROWS_PER_REQUEST, 0xBA7C4)
        .into_iter()
        .map(InferenceRequest::new)
        .collect();
    let executor = BatchExecutor::new(Arc::new(reloaded));

    // Status-quo baseline: every request re-derives patterns, exactly the
    // calibrate → decompose → simulate walk the repo performed per run
    // before the compiled artifact existed.
    println!(
        "timing single-request path (recalibrate per request, {BASELINE_REQUESTS} requests)..."
    );
    let baseline_total = time_runs(runs, || {
        for request in &requests[..BASELINE_REQUESTS] {
            let model = compiler.compile(&workload);
            let one_shot = BatchExecutor::new(Arc::new(model));
            std::hint::black_box(one_shot.execute_one(request).expect("baseline serves"));
        }
    });
    let single_inf_s = BASELINE_REQUESTS as f64 / baseline_total.as_secs_f64();
    println!("  {single_inf_s:.1} inf/s ({:.3} ms/inf)", 1e3 / single_inf_s);

    // Compiled engine at batch sizes 1 / 8 / 64 over the same 64 requests.
    let mut batched_inf_s = Vec::new();
    for batch_size in [1usize, 8, 64] {
        let elapsed = time_runs(runs, || {
            for chunk in requests.chunks(batch_size) {
                std::hint::black_box(executor.execute(chunk).expect("batch serves"));
            }
        });
        let inf_s = REQUESTS as f64 / elapsed.as_secs_f64();
        println!("  batch {batch_size:>2}: {inf_s:.1} inf/s");
        batched_inf_s.push((batch_size, inf_s));
    }
    let batch64_inf_s = batched_inf_s.last().expect("three batch sizes").1;
    let speedup_vs_single = batch64_inf_s / single_inf_s;
    println!("batched (64) vs single-request: {speedup_vs_single:.1}x");

    // Simulated serving metrics from one batch-64 report.
    let report = executor.execute(&requests).expect("batch serves");
    let p50 = report.p50_cycles();
    let p99 = report.p99_cycles();
    let energy_mj = report.energy_per_inference_j() * 1e3;
    println!(
        "simulated per-inference: p50 {p50:.0} cycles, p99 {p99:.0} cycles, {energy_mj:.3} mJ"
    );

    // Exactness: batched readouts equal the sequential single-input path
    // bit for bit.
    let exact = requests.iter().zip(&report.requests).all(|(request, batched)| {
        let alone = executor.execute_one(request).expect("single path serves");
        batched.readout == alone.readout && batched.readout.is_some()
    });
    println!("batch outputs == sequential single-input outputs: {exact}");

    let json = format!(
        r#"{{
  "workload": "vgg16-cifar10",
  "config": {{
    "k": {artifact_k},
    "q": {artifact_q},
    "layers": {layers},
    "requests": {REQUESTS},
    "rows_per_request": {ROWS_PER_REQUEST},
    "baseline_requests": {BASELINE_REQUESTS}
  }},
  "runs": {runs},
  "threads": {threads},
  "compile_ms": {compile_ms:.3},
  "artifact_bytes": {artifact_bytes},
  "artifact_roundtrip_byte_identical": {roundtrip_identical},
  "single_request_recalibrate": {{ "inf_per_s": {single_inf_s:.3} }},
  "batched_compiled": {{
    "batch_1_inf_per_s": {b1:.3},
    "batch_8_inf_per_s": {b8:.3},
    "batch_64_inf_per_s": {b64:.3}
  }},
  "speedup_batch64_vs_single_request": {speedup_vs_single:.3},
  "simulated_per_inference": {{
    "p50_cycles": {p50:.1},
    "p99_cycles": {p99:.1},
    "energy_mj": {energy_mj:.6}
  }},
  "batch_outputs_match_sequential": {exact}
}}
"#,
        artifact_k = artifact.k(),
        artifact_q = artifact.q(),
        layers = workload.layers.len(),
        threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        compile_ms = compile_time.as_secs_f64() * 1e3,
        artifact_bytes = bytes.len(),
        b1 = batched_inf_s[0].1,
        b8 = batched_inf_s[1].1,
        b64 = batched_inf_s[2].1,
    );
    // Assert before persisting, so a failed acceptance run can never
    // overwrite the checked-in numbers with its own.
    assert!(roundtrip_identical, "artifact roundtrip must be byte-identical");
    assert!(exact, "batched outputs must equal the sequential single-input path exactly");
    // Wall-clock ratio on shared machines is noisy; CI smoke runs lower the
    // bar via PHI_SERVING_MIN_SPEEDUP (0 disables) while local/acceptance
    // runs keep the 4x floor.
    let min_speedup: f64 =
        std::env::var("PHI_SERVING_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok()).unwrap_or(4.0);
    assert!(
        speedup_vs_single >= min_speedup,
        "batched throughput (batch 64: {batch64_inf_s:.1} inf/s) must be at least \
         {min_speedup}x the single-request path ({single_inf_s:.1} inf/s), got \
         {speedup_vs_single:.2}x"
    );

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serving.json");
    std::fs::write(&path, json).expect("write BENCH_serving.json");
    println!("wrote {}", path.display());
}
