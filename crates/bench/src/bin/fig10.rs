//! Figure 10: Level-2 element density with and without PAFT across the
//! vision models (Spikformer, SDT, VGG16, ResNet18 on their datasets).
//!
//! Run: `cargo run --release -p phi-bench --bin fig10`

use phi_analysis::Table;
use phi_bench::{pct, results_dir, ExperimentScale};
use phi_snn::pipeline::workload_stats;
use snn_workloads::{DatasetId, ModelId};

fn main() {
    let scale = ExperimentScale::from_env();
    let base = scale.pipeline();
    let paft = scale.pipeline().with_paft(0.6);

    let pairs: [(ModelId, DatasetId); 10] = [
        (ModelId::Spikformer, DatasetId::Cifar10),
        (ModelId::Spikformer, DatasetId::Cifar10Dvs),
        (ModelId::Spikformer, DatasetId::Cifar100),
        (ModelId::Sdt, DatasetId::Cifar10),
        (ModelId::Sdt, DatasetId::Cifar10Dvs),
        (ModelId::Sdt, DatasetId::Cifar100),
        (ModelId::Vgg16, DatasetId::Cifar10),
        (ModelId::Vgg16, DatasetId::Cifar100),
        (ModelId::ResNet18, DatasetId::Cifar10),
        (ModelId::ResNet18, DatasetId::Cifar100),
    ];

    let mut table = Table::new(
        "Fig 10: element density with and without PAFT",
        &["Model", "Dataset", "without PAFT", "with PAFT", "reduction"],
    );
    for (model, dataset) in pairs {
        let workload = scale.workload(model, dataset);
        let without = workload_stats(&workload, &base).element_density();
        let with = workload_stats(&workload, &paft).element_density();
        table.row_owned(vec![
            model.to_string(),
            dataset.to_string(),
            pct(without),
            pct(with),
            format!("{:.1}%", 100.0 * (1.0 - with / without)),
        ]);
    }
    println!("{table}");
    table.write_csv(results_dir().join("fig10.csv")).expect("write fig10.csv");
    println!("paper shape: densities of 1.5-4.5% drop by roughly a quarter with PAFT");
}
