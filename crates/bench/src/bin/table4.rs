//! Table 4: Phi sparsity breakdown — bit / L1 / L2(+1) / L2(−1) densities
//! and theoretical speedups over bit sparsity and dense, for the ten
//! model/dataset pairs of the paper plus random matrices at 5/10/20/50%
//! density (§5.6 generalizability analysis).
//!
//! Run: `cargo run --release -p phi-bench --bin table4`

use phi_analysis::Table;
use phi_bench::{pct, ratio, results_dir, ExperimentScale};
use phi_core::{decompose, CalibrationConfig, Calibrator};
use phi_snn::pipeline::workload_stats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_core::SpikeMatrix;
use snn_workloads::{DatasetId, ModelId};

fn main() {
    let scale = ExperimentScale::from_env();
    let pipeline = scale.pipeline();

    let pairs: [(ModelId, DatasetId); 10] = [
        (ModelId::Vgg16, DatasetId::Cifar10),
        (ModelId::Vgg16, DatasetId::Cifar100),
        (ModelId::ResNet18, DatasetId::Cifar10),
        (ModelId::ResNet18, DatasetId::Cifar100),
        (ModelId::SpikingBert, DatasetId::Sst2),
        (ModelId::SpikingBert, DatasetId::Mnli),
        (ModelId::Spikformer, DatasetId::Cifar10Dvs),
        (ModelId::Spikformer, DatasetId::Cifar100),
        (ModelId::Sdt, DatasetId::Cifar10Dvs),
        (ModelId::Sdt, DatasetId::Cifar100),
    ];

    let mut table = Table::new(
        "Table 4: Phi sparsity breakdown (k=16, q=128)",
        &["Model", "Dataset", "Bit", "L1", "L2:+1", "L2:-1", "Sp/Bit", "Sp/Dense"],
    );

    for (model, dataset) in pairs {
        let workload = scale.workload(model, dataset);
        let stats = workload_stats(&workload, &pipeline);
        table.row_owned(vec![
            model.to_string(),
            dataset.to_string(),
            pct(stats.bit_density()),
            pct(stats.l1_density()),
            pct(stats.l2_pos_density()),
            pct(stats.l2_neg_density()),
            ratio(stats.speedup_over_bit()),
            ratio(stats.speedup_over_dense()),
        ]);
    }

    // Random matrices (§5.6): patterns still emerge from pure noise.
    let mut rng = StdRng::seed_from_u64(404);
    for density in [0.05, 0.10, 0.20, 0.50] {
        let acts = SpikeMatrix::random(scale.max_rows.max(512), 512, density, &mut rng);
        let calib = SpikeMatrix::random(scale.calibration_rows.max(512), 512, density, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig {
            max_iters: scale.kmeans_iters,
            ..Default::default()
        })
        .calibrate(&calib, &mut rng);
        let stats = decompose(&acts, &patterns).stats();
        table.row_owned(vec![
            "Random".into(),
            pct(density),
            pct(stats.bit_density()),
            pct(stats.l1_density()),
            pct(stats.l2_pos_density()),
            pct(stats.l2_neg_density()),
            ratio(stats.speedup_over_bit()),
            ratio(stats.speedup_over_dense()),
        ]);
    }

    println!("{table}");
    let csv = results_dir().join("table4.csv");
    table.write_csv(&csv).expect("write table4.csv");
    println!("paper reference rows (bit/L1/+1/-1, Sp/B, Sp/D):");
    println!("  VGG16 CIFAR10     8.7/7.5/1.4/0.1   5.8x  66.5x");
    println!("  SpikingBERT SST-2 20.3/18.0/3.2/0.8  5.0x  24.8x");
    println!("  Random 10%        10.0/6.6/3.4/0.0   2.9x  29.6x");
    println!("csv: {}", csv.display());
}
