//! §6.1 — benefit and cost of Phi preprocessing: the energy saved by the
//! accumulations that pattern matching eliminates, versus the energy the
//! matcher itself burns (the paper reports a 75.5× ratio averaged over its
//! models).
//!
//! Run: `cargo run --release -p phi-bench --bin discussion`

use phi_accel::{EnergyModel, PhiConfig};
use phi_analysis::Table;
use phi_bench::{fmt, results_dir, ExperimentScale};
use phi_core::decompose;
use phi_snn::pipeline::{calibrate_layer, PipelineConfig};
use snn_workloads::{DatasetId, ModelId};

fn main() {
    let scale = ExperimentScale::from_env();
    let config = PhiConfig::default();
    let energy = EnergyModel::default();
    let e_acc = energy.energy_per_accumulation_j(&config);
    let e_cmp = energy.energy_per_comparison_j(&config);

    let pairs: [(ModelId, DatasetId); 6] = [
        (ModelId::Vgg16, DatasetId::Cifar100),
        (ModelId::ResNet18, DatasetId::Cifar100),
        (ModelId::Spikformer, DatasetId::Cifar100),
        (ModelId::Sdt, DatasetId::Cifar100),
        (ModelId::SpikeBert, DatasetId::Sst2),
        (ModelId::SpikingBert, DatasetId::Sst2),
    ];

    let mut table = Table::new(
        "Discussion 6.1: preprocessing cost vs accumulation savings",
        &["Model", "saved energy (mJ)", "preproc energy (mJ)", "ratio"],
    );
    let pipeline: PipelineConfig = scale.pipeline();
    let mut geo = 0.0f64;
    for (model, dataset) in pairs {
        let workload = scale.workload(model, dataset);
        let mut saved_j = 0.0f64;
        let mut preproc_j = 0.0f64;
        for (i, layer) in workload.layers.iter().enumerate() {
            let patterns = calibrate_layer(layer, &pipeline.calibration, pipeline.seed + i as u64);
            let d = decompose(&layer.activations, &patterns);
            let s = d.stats();
            let n = layer.spec.shape.n as f64;
            // Accumulations skipped: bit-sparsity work minus Phi work
            // (L2 corrections + one PWP accumulation per assigned tile),
            // each n-wide.
            let phi_accums = (s.l2_pos + s.l2_neg + s.assigned_tiles) as f64;
            let saved_ops = (s.bit_nnz as f64 - phi_accums).max(0.0) * n * layer.row_scale;
            saved_j += saved_ops * e_acc;
            // Matcher comparisons: every row-tile against q patterns.
            let comparisons =
                s.tiles() as f64 * config.patterns_per_partition as f64 * layer.row_scale;
            preproc_j += comparisons * e_cmp;
        }
        let ratio = saved_j / preproc_j;
        geo += ratio.ln();
        table.row_owned(vec![
            model.to_string(),
            fmt(saved_j * 1e3, 4),
            fmt(preproc_j * 1e3, 4),
            fmt(ratio, 1),
        ]);
    }
    table.row_owned(vec![
        "Geomean".into(),
        "".into(),
        "".into(),
        fmt((geo / pairs.len() as f64).exp(), 1),
    ]);
    println!("{table}");
    table.write_csv(results_dir().join("discussion.csv")).expect("write discussion.csv");
    println!("paper reference: savings are 75.5x the preprocessing cost on average");
}
