//! Table 2: comparison of Phi with baselines on VGG-16 / CIFAR-100 —
//! throughput (GOP/s), energy efficiency (GOP/J), and area efficiency
//! (GOP/s/mm²), each with its factor over Spiking Eyeriss.
//!
//! Run: `cargo run --release -p phi-bench --bin table2`

use phi_accel::EnergyModel;
use phi_analysis::Table;
use phi_bench::{baselines, fmt, ratio, results_dir, ExperimentScale};
use phi_snn::pipeline::{run_baseline_workload, run_phi_workload};
use snn_workloads::{DatasetId, ModelId};

fn main() {
    let scale = ExperimentScale::from_env();
    let workload = scale.workload(ModelId::Vgg16, DatasetId::Cifar100);
    let pipeline = scale.pipeline();
    let freq = pipeline.accelerator.frequency_hz;

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for baseline in baselines() {
        let report = run_baseline_workload(baseline.as_ref(), &workload);
        let gops = report.throughput_gops(freq);
        let gopj = report.gops_per_joule();
        let area = baseline.area_mm2();
        let area_eff = if area.is_nan() { f64::NAN } else { gops / area };
        rows.push((baseline.name().to_owned(), gops, gopj, area_eff));
    }

    let phi_report = run_phi_workload(&workload, &pipeline);
    let phi_area = EnergyModel::default().area(&pipeline.accelerator).total();
    let phi_gops = phi_report.throughput_gops(freq);
    rows.push(("Phi".to_owned(), phi_gops, phi_report.gops_per_joule(), phi_gops / phi_area));

    let (e_gops, e_gopj, e_area) = (rows[0].1, rows[0].2, rows[0].3);
    let mut table = Table::new(
        "Table 2: Phi vs baselines (VGG16 / CIFAR100, 500 MHz, 28 nm)",
        &[
            "Accelerator",
            "Area (mm2)",
            "GOP/s",
            "vs Eyeriss",
            "GOP/J",
            "vs Eyeriss",
            "GOP/s/mm2",
            "vs Eyeriss",
        ],
    );
    let areas = [1.068, f64::NAN, 1.13, 2.09, 0.768, phi_area];
    for ((name, gops, gopj, area_eff), area) in rows.iter().zip(areas) {
        let fmt_nan = |v: f64, d: usize| {
            if v.is_nan() {
                "-".to_owned()
            } else {
                fmt(v, d)
            }
        };
        table.row_owned(vec![
            name.clone(),
            fmt_nan(area, 3),
            fmt(*gops, 2),
            ratio(gops / e_gops),
            fmt(*gopj, 2),
            ratio(gopj / e_gopj),
            fmt_nan(*area_eff, 2),
            if area_eff.is_nan() { "-".to_owned() } else { ratio(area_eff / e_area) },
        ]);
    }
    println!("{table}");
    let csv = results_dir().join("table2.csv");
    table.write_csv(&csv).expect("write table2.csv");
    println!("paper reference: Phi = 242.80 GOP/s (26.70x), 285.81 GOP/J (55.41x), 366.70 GOP/s/mm2 (43.06x)");
    println!("csv: {}", csv.display());
}
