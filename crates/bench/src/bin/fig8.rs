//! Figure 8: speedup (normalized to Spiking Eyeriss) and energy
//! (normalized to Phi w/o PAFT) across all twelve model/dataset pairs, for
//! every baseline plus Phi with and without PAFT.
//!
//! Run: `cargo run --release -p phi-bench --bin fig8`

use phi_analysis::Table;
use phi_bench::{baselines, fmt, results_dir, ExperimentScale};
use phi_snn::pipeline::{run_baseline_workload, run_phi_workload};
use snn_workloads::FIG8_PAIRS;

fn main() {
    let scale = ExperimentScale::from_env();
    let pipeline = scale.pipeline();
    let paft_pipeline = scale.pipeline().with_paft(0.6);
    let freq = pipeline.accelerator.frequency_hz;

    let mut speedup = Table::new(
        "Fig 8 (top): speedup normalized to Spiking Eyeriss",
        &[
            "Model",
            "Dataset",
            "Eyeriss",
            "PTB",
            "SATO",
            "SpinalFlow",
            "Stellar",
            "Phi w/o FT",
            "Phi w FT",
        ],
    );
    let mut energy = Table::new(
        "Fig 8 (bottom): energy normalized to Phi w/o PAFT",
        &[
            "Model",
            "Dataset",
            "Eyeriss",
            "PTB",
            "SATO",
            "SpinalFlow",
            "Stellar",
            "Phi w/o FT",
            "Phi w FT",
        ],
    );

    // Geomean accumulators: one per accelerator column.
    let mut speed_geo = [0.0f64; 7];
    let mut energy_geo = [0.0f64; 7];
    let mut pairs_done = 0usize;

    for (model, dataset) in FIG8_PAIRS {
        let workload = scale.workload(model, dataset);

        let mut runtimes = Vec::new();
        let mut energies = Vec::new();
        for baseline in baselines() {
            let r = run_baseline_workload(baseline.as_ref(), &workload);
            runtimes.push(r.runtime_s(freq));
            energies.push(r.total_energy_j());
        }
        let phi = run_phi_workload(&workload, &pipeline);
        let phi_ft = run_phi_workload(&workload, &paft_pipeline);
        runtimes.push(phi.runtime_s(freq));
        runtimes.push(phi_ft.runtime_s(freq));
        energies.push(phi.total_energy().total_j());
        energies.push(phi_ft.total_energy().total_j());

        let eyeriss_rt = runtimes[0];
        let phi_energy = energies[5];
        let speed_row: Vec<f64> = runtimes.iter().map(|rt| eyeriss_rt / rt).collect();
        let energy_row: Vec<f64> = energies.iter().map(|e| e / phi_energy).collect();

        for (i, (&s, &e)) in speed_row.iter().zip(&energy_row).enumerate() {
            speed_geo[i] += s.ln();
            energy_geo[i] += e.ln();
        }
        pairs_done += 1;

        let mut s_cells = vec![model.to_string(), dataset.to_string()];
        s_cells.extend(speed_row.iter().map(|v| fmt(*v, 2)));
        speedup.row_owned(s_cells);
        let mut e_cells = vec![model.to_string(), dataset.to_string()];
        e_cells.extend(energy_row.iter().map(|v| fmt(*v, 2)));
        energy.row_owned(e_cells);
    }

    let mut s_cells = vec!["Geomean".to_owned(), "".to_owned()];
    s_cells.extend(speed_geo.iter().map(|v| fmt((v / pairs_done as f64).exp(), 2)));
    speedup.row_owned(s_cells);
    let mut e_cells = vec!["Geomean".to_owned(), "".to_owned()];
    e_cells.extend(energy_geo.iter().map(|v| fmt((v / pairs_done as f64).exp(), 2)));
    energy.row_owned(e_cells);

    println!("{speedup}");
    println!("{energy}");
    speedup.write_csv(results_dir().join("fig8_speedup.csv")).expect("write fig8_speedup.csv");
    energy.write_csv(results_dir().join("fig8_energy.csv")).expect("write fig8_energy.csv");
    println!("paper geomeans (speedup over Eyeriss): PTB 2.2x, SATO 4.1x, SpinalFlow 4.3x, Stellar 7.8x, Phi w/o FT 22.6x, Phi w FT 28.4x");
    println!("paper claims: Phi = 3.45x Stellar speedup, 4.93x Stellar energy efficiency, PAFT adds 1.26x speedup / 1.1x energy");
}
