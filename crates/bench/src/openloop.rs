//! Open-loop load generation for the serving benchmarks.
//!
//! Closed-loop clients (each waiting for its response before submitting
//! again) self-throttle: when the server slows down, the offered load
//! drops with it, so queueing collapse is invisible and tail latencies
//! look flat. An **open-loop** generator submits on a fixed schedule
//! regardless of how the server is doing — the traffic shape real
//! services face — which is what exposes throughput saturation, queue
//! growth, and shedding.
//!
//! [`ArrivalSchedule`] precomputes a deterministic Poisson arrival
//! process (exponential inter-arrival times from a seeded generator), so
//! a benchmark run is reproducible for a fixed seed and the schedule can
//! be audited before any traffic flows. [`LatencySummary`] condenses
//! per-request latencies into the tail percentiles the benchmark
//! reports. To stay free of coordinated omission, callers should charge
//! each request from its *scheduled* arrival instant — a submitter
//! running late adds the slip to the request's latency instead of
//! silently thinning the offered load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A precomputed open-loop arrival schedule: each entry is an offset
/// from the (caller-chosen) start instant at which one request must be
/// submitted. Offsets are non-decreasing.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSchedule {
    offsets: Vec<Duration>,
}

impl ArrivalSchedule {
    /// A Poisson process at `rate_per_s` arrivals per second: `count`
    /// arrivals whose inter-arrival gaps are exponentially distributed
    /// with mean `1 / rate_per_s`, drawn from a deterministic generator —
    /// the same `(rate, count, seed)` always yields the same schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_s` is finite and positive.
    pub fn poisson(rate_per_s: f64, count: usize, seed: u64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "arrival rate must be finite and positive, got {rate_per_s}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(count);
        let mut at = 0.0f64;
        for _ in 0..count {
            // Inverse-CDF exponential sample. `u` is in [0, 1), so
            // `1 - u` is in (0, 1] and the log is finite.
            let u: f64 = rng.gen();
            at += -(1.0 - u).ln() / rate_per_s;
            offsets.push(Duration::from_secs_f64(at));
        }
        ArrivalSchedule { offsets }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the schedule holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The arrival offsets from the start instant, non-decreasing.
    pub fn offsets(&self) -> &[Duration] {
        &self.offsets
    }

    /// When the last arrival is due (zero for an empty schedule) — the
    /// shortest wall-clock time an on-schedule run can take.
    pub fn span(&self) -> Duration {
        self.offsets.last().copied().unwrap_or(Duration::ZERO)
    }

    /// Mean gap between consecutive arrivals (zero with fewer than two);
    /// for a Poisson schedule this estimates `1 / rate`.
    pub fn mean_interarrival(&self) -> Duration {
        if self.offsets.len() < 2 {
            return Duration::ZERO;
        }
        // Offsets are cumulative, so the gaps telescope.
        self.span() / (self.offsets.len() - 1) as u32
    }
}

/// Tail-focused summary of a set of per-request latencies, in
/// microseconds. Percentiles are nearest-rank (no interpolation), so
/// every reported value is a latency some request actually saw.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Worst observed, µs.
    pub max_us: f64,
}

impl LatencySummary {
    /// Summarizes latency samples given in microseconds; all zeros for an
    /// empty input.
    pub fn from_samples_us(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latency samples"));
        let count = samples.len();
        LatencySummary {
            count,
            mean_us: samples.iter().sum::<f64>() / count as f64,
            p50_us: percentile_sorted(&samples, 50.0),
            p99_us: percentile_sorted(&samples, 99.0),
            p999_us: percentile_sorted(&samples, 99.9),
            max_us: samples[count - 1],
        }
    }

    /// Summarizes latency samples given as [`Duration`]s.
    pub fn from_durations(samples: &[Duration]) -> Self {
        LatencySummary::from_samples_us(samples.iter().map(|d| d.as_secs_f64() * 1e6).collect())
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (`0 < p ≤ 100`);
/// 0 for an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // The epsilon keeps exact rank boundaries (e.g. p99.9 of 1000
    // samples) from ceiling one rank too high on float noise.
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_same_schedule() {
        let a = ArrivalSchedule::poisson(50_000.0, 512, 42);
        let b = ArrivalSchedule::poisson(50_000.0, 512, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalSchedule::poisson(50_000.0, 512, 42);
        let b = ArrivalSchedule::poisson(50_000.0, 512, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn offsets_are_nondecreasing() {
        let s = ArrivalSchedule::poisson(10_000.0, 1024, 7);
        assert!(s.offsets().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.span(), *s.offsets().last().unwrap());
    }

    #[test]
    fn mean_interarrival_tracks_the_rate() {
        // 1/rate = 100 µs; with 8192 samples the empirical mean of an
        // exponential is within a few percent of the true mean with
        // overwhelming probability (and the schedule is deterministic, so
        // this is not a flaky bound).
        let rate = 10_000.0;
        let s = ArrivalSchedule::poisson(rate, 8192, 1234);
        let mean_s = s.mean_interarrival().as_secs_f64();
        let expected = 1.0 / rate;
        assert!(
            (mean_s - expected).abs() / expected < 0.05,
            "empirical mean {mean_s} vs expected {expected}"
        );
    }

    #[test]
    fn empty_and_singleton_schedules_are_sane() {
        let empty = ArrivalSchedule::poisson(1000.0, 0, 1);
        assert!(empty.is_empty());
        assert_eq!(empty.span(), Duration::ZERO);
        assert_eq!(empty.mean_interarrival(), Duration::ZERO);
        let one = ArrivalSchedule::poisson(1000.0, 1, 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.mean_interarrival(), Duration::ZERO);
    }

    #[test]
    fn latency_summary_reports_nearest_rank_tails() {
        let samples: Vec<f64> = (1..=1000).map(|v| v as f64).collect();
        let s = LatencySummary::from_samples_us(samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, 500.0);
        assert_eq!(s.p99_us, 990.0);
        assert_eq!(s.p999_us, 999.0);
        assert_eq!(s.max_us, 1000.0);
        assert!((s.mean_us - 500.5).abs() < 1e-9);
        assert_eq!(LatencySummary::from_samples_us(Vec::new()), LatencySummary::default());
    }

    #[test]
    fn duration_samples_convert_to_microseconds() {
        let s = LatencySummary::from_durations(&[
            Duration::from_micros(100),
            Duration::from_micros(300),
            Duration::from_micros(200),
        ]);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50_us, 200.0);
        assert_eq!(s.max_us, 300.0);
    }
}
