//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper has a binary under `src/bin/`
//! (`table2`, `table3`, `table4`, `fig7`, `fig8`, `fig9`, `fig10`,
//! `fig11`, `fig12`, `discussion`); this library holds the common
//! experiment-scale configuration, the baseline roster, and output-path
//! handling. Results are printed as aligned tables and also written as CSV
//! under `results/`.

pub mod openloop;

use phi_core::CalibrationConfig;
use phi_snn::pipeline::PipelineConfig;
use snn_baselines::{Accelerator, Ptb, Sato, SpikingEyeriss, SpinalFlow, Stellar};
use snn_workloads::{DatasetId, ModelId, Workload, WorkloadConfig};
use std::path::PathBuf;

/// Experiment-scale knobs: large enough for stable statistics, small
/// enough that the full suite finishes in minutes.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Per-layer activation row cap.
    pub max_rows: usize,
    /// Per-layer calibration rows.
    pub calibration_rows: usize,
    /// k-means iterations.
    pub kmeans_iters: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { max_rows: 1024, calibration_rows: 512, kmeans_iters: 12 }
    }
}

impl ExperimentScale {
    /// A smaller scale for smoke tests.
    pub fn smoke() -> Self {
        ExperimentScale { max_rows: 128, calibration_rows: 128, kmeans_iters: 6 }
    }

    /// Honors the `PHI_SMOKE` environment variable so CI can run every
    /// binary quickly.
    pub fn from_env() -> Self {
        if std::env::var_os("PHI_SMOKE").is_some() {
            ExperimentScale::smoke()
        } else {
            ExperimentScale::default()
        }
    }

    /// Generates a workload for a model/dataset pair at this scale.
    pub fn workload(&self, model: ModelId, dataset: DatasetId) -> Workload {
        WorkloadConfig::new(model, dataset)
            .with_max_rows(self.max_rows)
            .with_calibration_rows(self.calibration_rows)
            .generate()
    }

    /// The pipeline configuration matching this scale (paper defaults:
    /// `k = 16`, `q = 128`).
    pub fn pipeline(&self) -> PipelineConfig {
        PipelineConfig {
            calibration: CalibrationConfig { max_iters: self.kmeans_iters, ..Default::default() },
            ..Default::default()
        }
    }
}

/// The baseline roster in Table 2 / Fig. 8 order.
pub fn baselines() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(SpikingEyeriss::default()),
        Box::new(Ptb::default()),
        Box::new(Sato::default()),
        Box::new(SpinalFlow::default()),
        Box::new(Stellar::default()),
    ]
}

/// Output directory for CSVs (`results/`, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Median of a set of timings (the `bench_*` binaries' central estimate).
///
/// # Panics
///
/// Panics on an empty input.
pub fn median(mut times: Vec<std::time::Duration>) -> std::time::Duration {
    assert!(!times.is_empty(), "median of no timings");
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median of a set of rates or ratios (the `bench_*` binaries' central
/// estimate for already-derived numbers, e.g. per-run speedup pairs).
///
/// # Panics
///
/// Panics on an empty input.
pub fn median_f64(mut values: Vec<f64>) -> f64 {
    assert!(!values.is_empty(), "median of no values");
    values.sort_unstable_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Repetition count for the `bench_*` binaries: `PHI_BENCH_RUNS`, with
/// non-numeric or missing values falling back to 5.
pub fn bench_runs() -> usize {
    std::env::var("PHI_BENCH_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(5)
}

/// Reads an `f64` env knob (the `bench_*` speedup floors), falling back
/// to `default` when unset or unparsable.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Formats a float with `digits` decimals.
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", 100.0 * value)
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(value: f64) -> String {
    if value.is_infinite() {
        "inf".to_owned()
    } else {
        format!("{value:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_is_smaller() {
        let s = ExperimentScale::smoke();
        let d = ExperimentScale::default();
        assert!(s.max_rows < d.max_rows);
        assert!(s.calibration_rows <= d.calibration_rows);
    }

    #[test]
    fn baseline_roster_matches_table2() {
        let names: Vec<&str> = baselines().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["Eyeriss", "PTB", "SATO", "SpinalFlow", "Stellar"]);
    }

    #[test]
    fn formatters_behave() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.0305), "3.0%"); // banker's-free f64 rounding of 3.05
        assert_eq!(ratio(3.454), "3.45x");
        assert_eq!(ratio(f64::INFINITY), "inf");
    }

    #[test]
    fn median_takes_the_middle_timing() {
        use std::time::Duration;
        let ms = |n| Duration::from_millis(n);
        assert_eq!(median(vec![ms(3), ms(1), ms(2)]), ms(2));
        assert_eq!(median(vec![ms(5)]), ms(5));
        assert_eq!(env_f64("PHI_NO_SUCH_KNOB", 4.0), 4.0);
    }

    #[test]
    fn workload_generation_at_smoke_scale() {
        let w = ExperimentScale::smoke().workload(ModelId::Vgg16, DatasetId::Cifar10);
        assert!(!w.layers.is_empty());
        assert!(w.layers.iter().all(|l| l.activations.rows() <= 128));
    }
}
