//! The Phi pattern matcher (§4.2.1): a 1-D systolic array of `q` matcher
//! units that assigns each incoming activation row-tile its best pattern and
//! emits the candidate Level-2 sparse row.
//!
//! Functionally the matcher computes exactly what
//! [`phi_core::decompose()`] computes (that equivalence is tested); here we
//! model its *timing*: one row-tile enters per cycle, results emerge after
//! the `q`-deep pipeline fills, and every transit performs `q` XOR+popcount
//! comparisons (the energy events the §6.1 analysis charges).

/// Timing/energy model of the systolic pattern matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherModel {
    /// Pipeline depth = number of matcher units per lane = patterns per
    /// partition.
    pub pipeline_depth: usize,
    /// Parallel lanes (row-tiles entering per cycle).
    pub lanes: usize,
}

impl MatcherModel {
    /// Creates a matcher model with `q` units per lane and `lanes` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(q: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one matcher lane");
        MatcherModel { pipeline_depth: q, lanes }
    }

    /// Cycles to match `rows × parts` row-tiles: `lanes` per cycle plus the
    /// pipeline fill.
    pub fn cycles(&self, rows: usize, parts: usize) -> u64 {
        if rows == 0 || parts == 0 {
            return 0;
        }
        let tiles = (rows as u64) * (parts as u64);
        tiles.div_ceil(self.lanes as u64) + self.pipeline_depth as u64
    }

    /// Pattern comparisons performed (energy events): every tile visits
    /// every unit.
    pub fn comparisons(&self, rows: usize, parts: usize) -> u64 {
        (rows as u64) * (parts as u64) * self.pipeline_depth as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_one_tile_per_cycle_per_lane() {
        let m = MatcherModel::new(128, 1);
        assert_eq!(m.cycles(1000, 4), 4128);
        // Doubling tiles roughly doubles cycles (pipeline fill amortizes).
        assert!(m.cycles(2000, 4) > 2 * m.cycles(1000, 4) - 200);
    }

    #[test]
    fn lanes_divide_cycles() {
        let single = MatcherModel::new(128, 1);
        let quad = MatcherModel::new(128, 4);
        assert_eq!(quad.cycles(1000, 4), 1000 + 128);
        assert!(quad.cycles(1000, 4) < single.cycles(1000, 4));
    }

    #[test]
    fn empty_input_takes_no_cycles() {
        let m = MatcherModel::new(128, 4);
        assert_eq!(m.cycles(0, 4), 0);
        assert_eq!(m.cycles(4, 0), 0);
    }

    #[test]
    fn comparisons_scale_with_depth() {
        let shallow = MatcherModel::new(8, 2);
        let deep = MatcherModel::new(128, 2);
        assert_eq!(deep.comparisons(10, 2), 16 * shallow.comparisons(10, 2));
    }
}
