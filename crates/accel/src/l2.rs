//! The L2 processor (§4.3): pack-parallel processing of the Level-2
//! `{+1, −1}` corrections.
//!
//! Each cycle one pack leaves the pack buffer; the dispatcher routes every
//! unit to an adder-tree channel (weight row or partial sum, negated when
//! the value is −1), the reconfigurable adder tree sums the per-row
//! segments, and the crossbar writes the partial sums back bank-conflict
//! free (the packer guaranteed that). Throughput is therefore one pack per
//! cycle, fully pipelined, and utilization equals mean pack occupancy.

use crate::packer::{Pack, PackUnit};

/// Timing model of the L2 processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Model {
    /// Adder-tree input channels = pack capacity (8).
    pub channels: usize,
}

impl L2Model {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be nonzero");
        L2Model { channels }
    }

    /// Cycles to drain `packs` packs for one `n`-tile: one per cycle.
    pub fn cycles(&self, packs: u64) -> u64 {
        packs
    }

    /// Weight-row accumulations performed by a pack stream (energy events;
    /// each unit is one `n`-wide SIMD addition).
    pub fn accumulations(&self, packs: &[Pack]) -> u64 {
        packs.iter().map(|p| p.units.len() as u64).sum()
    }

    /// Adder-tree utilization for a pack stream: occupied channels over
    /// total channel-cycles.
    pub fn utilization(&self, packs: &[Pack]) -> f64 {
        if packs.is_empty() {
            return 0.0;
        }
        let occupied: u64 = packs.iter().map(|p| p.units.len() as u64).sum();
        occupied as f64 / (packs.len() as u64 * self.channels as u64) as f64
    }

    /// Partial-sum buffer reads a pack stream performs (one per psum unit).
    pub fn psum_reads(&self, packs: &[Pack]) -> u64 {
        packs
            .iter()
            .flat_map(|p| &p.units)
            .filter(|u| matches!(u, PackUnit::PartialSum { .. }))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packer::{pack_rows, PackerConfig};

    fn make_packs(rows: usize, nnz_per_row: usize) -> Vec<Pack> {
        let entries: Vec<(u8, bool)> = (0..nnz_per_row).map(|i| (i as u8, false)).collect();
        let data: Vec<(u32, &[(u8, bool)])> =
            (0..rows).map(|r| (r as u32, entries.as_slice())).collect();
        pack_rows(data.into_iter(), &PackerConfig::default()).packs
    }

    #[test]
    fn one_pack_per_cycle() {
        let m = L2Model::new(8);
        assert_eq!(m.cycles(17), 17);
    }

    #[test]
    fn accumulations_count_all_units() {
        let packs = make_packs(4, 2); // 4 rows × (2 nz + 1 psum) = 12 units
        let m = L2Model::new(8);
        assert_eq!(m.accumulations(&packs), 12);
        assert_eq!(m.psum_reads(&packs), 4);
    }

    #[test]
    fn utilization_is_high_for_dense_rows() {
        let packs = make_packs(8, 7); // each row fills a pack exactly
        let m = L2Model::new(8);
        assert!((m.utilization(&packs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_empty_stream_is_zero() {
        let m = L2Model::new(8);
        assert_eq!(m.utilization(&[]), 0.0);
    }
}
