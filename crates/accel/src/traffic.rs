//! Per-layer DRAM traffic accounting — the quantities behind Fig. 12 and
//! the memory side of Figs. 7c/7d.
//!
//! Conventions (bytes, per layer, full scale):
//!
//! * **Activation, dense** — the raw spike bitmap (`rows × cols / 8`), what
//!   a dense accelerator like Spiking Eyeriss streams.
//! * **Activation, Phi w/o compact structure** — a Level-2 presence bitmap
//!   plus per-correction sign/position metadata plus the pattern-index
//!   matrix.
//! * **Activation, Phi compact** — one byte per occupied pack unit (6-bit
//!   index + label + sign) plus per-pack metadata plus the pattern-index
//!   matrix (one byte per tile, `⌈log₂(q+1)⌉ ≤ 8` bits); empty row-tiles
//!   cost nothing.
//! * **Weights, dense** — `K × N` at 8-bit, ideal reuse (the Fig. 12b
//!   normalization base).
//! * **PWPs w/o prefetch** — all `q` PWPs of every partition, once per
//!   layer: `parts × q × N` bytes, i.e. `q/k ×` dense weights (the paper's
//!   9× for `q=128, k=16` counting weights too).
//! * **PWPs with prefetch** — only the PWPs a tile actually uses; if the
//!   PWP buffer can hold the layer's union working set, each used pattern
//!   is fetched once per layer, otherwise once per `m`-tile.

use crate::config::PhiConfig;
use phi_core::Decomposition;
use std::collections::HashSet;

/// Byte counts for one layer (already scaled to full layer size).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficReport {
    /// Dense activation bitmap bytes.
    pub act_dense: f64,
    /// Phi activation bytes without the compact pack structure.
    pub act_uncompressed: f64,
    /// Phi activation bytes with the compact pack structure.
    pub act_compressed: f64,
    /// Dense weight bytes (ideal reuse).
    pub weight_dense: f64,
    /// PWP bytes without prefetching (all patterns once).
    pub pwp_no_prefetch: f64,
    /// PWP bytes with prefetching (used patterns only).
    pub pwp_prefetch: f64,
    /// Output spike bitmap bytes.
    pub act_out: f64,
}

impl TrafficReport {
    /// Actual DRAM bytes for a configuration (compress/prefetch switches).
    pub fn total_bytes(&self, config: &PhiConfig) -> f64 {
        let act = if config.compress { self.act_compressed } else { self.act_uncompressed };
        let pwp = if config.prefetch { self.pwp_prefetch } else { self.pwp_no_prefetch };
        act + self.weight_dense + pwp + self.act_out
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &TrafficReport) {
        self.act_dense += other.act_dense;
        self.act_uncompressed += other.act_uncompressed;
        self.act_compressed += other.act_compressed;
        self.weight_dense += other.weight_dense;
        self.pwp_no_prefetch += other.pwp_no_prefetch;
        self.pwp_prefetch += other.pwp_prefetch;
        self.act_out += other.act_out;
    }
}

/// Computes the traffic report for one decomposed layer.
///
/// `n` is the output width, `packs`/`occupied_units` come from the packer
/// (packs built and units actually filled, for the sampled rows), and
/// `row_scale` is the sampled-to-full-layer row factor.
pub fn layer_traffic(
    decomp: &Decomposition,
    n: usize,
    packs: u64,
    occupied_units: u64,
    config: &PhiConfig,
    row_scale: f64,
) -> TrafficReport {
    let rows = decomp.rows() as f64;
    let cols = decomp.cols() as f64;
    let parts = decomp.num_partitions();
    let act_dense = rows * cols / 8.0;
    // Pattern-index matrix: one byte per (row, partition) tile.
    let index_bytes = rows * parts as f64;
    // Without the compact structure: the Level-2 presence bitmap plus one
    // byte of sign/position metadata per correction, plus the index matrix.
    let act_uncompressed = rows * cols / 8.0 + decomp.l2_nnz() as f64 + index_bytes;
    // Compact: one byte per occupied pack unit + 2 bytes of metadata per
    // pack (row ids / unit counts) + the index matrix; empty tiles cost
    // nothing.
    let act_compressed = occupied_units as f64 + 2.0 * packs as f64 + index_bytes;

    let weight_dense = cols * n as f64 * config.weight_bytes as f64;
    // Without prefetching the full pre-allocated pattern store streams in:
    // q PWPs per partition (the paper's 9x = q/k + 1 for q = 128, k = 16).
    let pwp_no_prefetch =
        (parts * config.patterns_per_partition) as f64 * n as f64 * config.pwp_bytes as f64;

    // Prefetch: count used patterns per m-tile per partition; dedupe across
    // tiles when the buffer can hold the union working set.
    let m_tiles = decomp.rows().div_ceil(config.tile_m);
    let mut per_tile_used = 0u64;
    let mut union_used: Vec<HashSet<u16>> = vec![HashSet::new(); parts];
    for mt in 0..m_tiles {
        let row_lo = mt * config.tile_m;
        let row_hi = (row_lo + config.tile_m).min(decomp.rows());
        for (part, union) in union_used.iter_mut().enumerate().take(parts) {
            let mut tile_set = HashSet::new();
            for r in row_lo..row_hi {
                if let Some(idx) = decomp.l1_index(r, part) {
                    tile_set.insert(idx);
                    union.insert(idx);
                }
            }
            per_tile_used += tile_set.len() as u64;
        }
    }
    let union_count: u64 = union_used.iter().map(|s| s.len() as u64).sum();
    let union_bytes = union_count as f64 * n as f64 * config.pwp_bytes as f64;
    let pwp_prefetch = if union_bytes <= config.pwp_buffer_bytes as f64 {
        union_bytes
    } else {
        per_tile_used as f64 * n as f64 * config.pwp_bytes as f64
    };

    let act_out = rows * n as f64 / 8.0;

    TrafficReport {
        act_dense: act_dense * row_scale,
        act_uncompressed: act_uncompressed * row_scale,
        act_compressed: act_compressed * row_scale,
        weight_dense,
        // PWP traffic does not scale with rows (patterns are per layer);
        // under per-tile reloads it scales with the number of m-tiles,
        // which the row subsampling reduces — compensate with row_scale on
        // the per-tile branch only.
        pwp_no_prefetch,
        pwp_prefetch: if union_bytes <= config.pwp_buffer_bytes as f64 {
            pwp_prefetch
        } else {
            pwp_prefetch * row_scale
        },
        act_out: act_out * row_scale,
    }
    .clamp_pwp()
}

impl TrafficReport {
    /// Prefetch can never cost more than loading everything once per tile
    /// set; clamp pathological subsample extrapolations.
    fn clamp_pwp(mut self) -> Self {
        if self.pwp_prefetch > self.pwp_no_prefetch {
            self.pwp_prefetch = self.pwp_no_prefetch;
        }
        self
    }

    /// The paper's §5.2 "PWP utilization" statistic: prefetched fraction of
    /// all PWP bytes.
    pub fn pwp_utilization(&self) -> f64 {
        if self.pwp_no_prefetch == 0.0 {
            0.0
        } else {
            self.pwp_prefetch / self.pwp_no_prefetch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::{decompose, CalibrationConfig, Calibrator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_core::SpikeMatrix;

    fn sample_decomp(rows: usize, cols: usize, density: f64, q: usize) -> Decomposition {
        let mut rng = StdRng::seed_from_u64(77);
        let acts = SpikeMatrix::random(rows, cols, density, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q, ..Default::default() })
            .calibrate(&acts, &mut rng);
        decompose(&acts, &patterns)
    }

    #[test]
    fn compressed_activations_beat_uncompressed() {
        let d = sample_decomp(256, 128, 0.1, 32);
        let t = layer_traffic(&d, 64, 100, 600, &PhiConfig::default(), 1.0);
        assert!(t.act_compressed < t.act_uncompressed);
    }

    #[test]
    fn prefetch_never_exceeds_full_load() {
        let d = sample_decomp(512, 256, 0.15, 128);
        let t = layer_traffic(&d, 64, 200, 1200, &PhiConfig::default(), 4.0);
        assert!(t.pwp_prefetch <= t.pwp_no_prefetch + 1e-9);
        assert!(t.pwp_utilization() <= 1.0);
    }

    #[test]
    fn pwp_ratio_matches_q_over_k() {
        // With q patterns of width k, the no-prefetch PWP traffic is q/k ×
        // dense weights when every partition holds the full q (the paper's
        // 8× for q=128, k=16, on top of 1× raw weights = 9×).
        let d = sample_decomp(2048, 256, 0.2, 128);
        let t = layer_traffic(&d, 32, 100, 700, &PhiConfig::default(), 1.0);
        let full_sets = (0..d.num_partitions()).all(|p| d.patterns().set(p).len() == 128);
        if full_sets {
            let ratio = t.pwp_no_prefetch / t.weight_dense;
            assert!((ratio - 8.0).abs() < 0.01, "ratio {ratio}");
        }
    }

    #[test]
    fn total_bytes_respects_switches() {
        let d = sample_decomp(128, 64, 0.1, 16);
        let t = layer_traffic(&d, 32, 50, 300, &PhiConfig::default(), 1.0);
        let base = PhiConfig::default();
        let no_comp = PhiConfig { compress: false, ..base.clone() };
        let no_pref = PhiConfig { prefetch: false, ..base.clone() };
        assert!(t.total_bytes(&no_comp) >= t.total_bytes(&base));
        assert!(t.total_bytes(&no_pref) >= t.total_bytes(&base));
    }

    #[test]
    fn row_scale_scales_row_traffic_only() {
        let d = sample_decomp(128, 64, 0.1, 16);
        let t1 = layer_traffic(&d, 32, 50, 300, &PhiConfig::default(), 1.0);
        let t2 = layer_traffic(&d, 32, 50, 300, &PhiConfig::default(), 2.0);
        assert!((t2.act_dense - 2.0 * t1.act_dense).abs() < 1e-9);
        assert!((t2.weight_dense - t1.weight_dense).abs() < 1e-9);
    }
}
