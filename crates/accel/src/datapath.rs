//! Functional execution of the Phi datapath.
//!
//! The cycle models in [`crate::l1`]/[`crate::l2`] count time; this module
//! *computes the numbers* the same way the hardware does — L2 packs go
//! through the dispatcher and the reconfigurable adder tree (Fig. 5/6),
//! partial sums live in a banked buffer written through the crossbar, and
//! the L1 processor accumulates prefetched PWP rows — and the result is
//! checked against the dense spike GEMM. This pins the microarchitecture
//! (packing, row splitting, psum chaining, bank assignment) to the
//! algorithm: a scheduling bug that reorders or drops a unit breaks these
//! tests, not just a counter.

use crate::packer::{pack_rows, Pack, PackUnit, PackerConfig};
use phi_core::{Decomposition, PwpTable};
use snn_core::{Error, Matrix, Result};

/// The reconfigurable adder tree (Fig. 6): sums contiguous same-row runs
/// of dispatched `n`-wide operands in one pass.
///
/// The hardware constraint is that a pack holds at most `channels` units;
/// [`ReconfigurableAdderTree::reduce`] enforces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconfigurableAdderTree {
    /// Input channels (8 in Table 1).
    pub channels: usize,
}

impl ReconfigurableAdderTree {
    /// Creates a tree with `channels` inputs.
    pub fn new(channels: usize) -> Self {
        ReconfigurableAdderTree { channels }
    }

    /// Sums contiguous equal-row runs: input `(row, operand)` pairs in
    /// dispatch order, output one `(row, sum)` per run.
    ///
    /// # Panics
    ///
    /// Panics if more than `channels` operands are dispatched (a pack can
    /// never exceed the tree width) or operand widths differ.
    pub fn reduce(&self, operands: &[(u32, Vec<f32>)]) -> Vec<(u32, Vec<f32>)> {
        assert!(
            operands.len() <= self.channels,
            "pack of {} units exceeds {} adder-tree channels",
            operands.len(),
            self.channels
        );
        let mut out: Vec<(u32, Vec<f32>)> = Vec::new();
        for (row, value) in operands {
            match out.last_mut() {
                Some((last_row, sum)) if last_row == row => {
                    assert_eq!(sum.len(), value.len(), "operand width mismatch");
                    for (s, v) in sum.iter_mut().zip(value) {
                        *s += v;
                    }
                }
                _ => out.push((*row, value.clone())),
            }
        }
        out
    }
}

/// Executes the full two-level datapath for one layer and returns the
/// output matrix (`rows × n`).
///
/// Mirrors the hardware flow per §4: for each K-partition, the packer
/// builds L2 packs whose units the dispatcher resolves to negated/plain
/// weight rows or partial sums, the adder tree reduces them, and the
/// crossbar writes rows back to the psum banks; concurrently the L1 path
/// accumulates one PWP row per assigned tile. The final psums are the
/// layer output.
///
/// # Errors
///
/// Returns a dimension error if `weights` height differs from the
/// decomposition width or the PWP table disagrees with the patterns.
pub fn execute_layer(
    decomp: &Decomposition,
    pwp: &PwpTable,
    weights: &Matrix,
    packer: &PackerConfig,
) -> Result<Matrix> {
    if weights.rows() != decomp.cols() {
        return Err(Error::DimensionMismatch {
            op: "execute_layer weights",
            expected: decomp.cols(),
            actual: weights.rows(),
        });
    }
    if pwp.num_partitions() != decomp.num_partitions() || pwp.n() != weights.cols() {
        return Err(Error::DimensionMismatch {
            op: "execute_layer pwp",
            expected: decomp.num_partitions(),
            actual: pwp.num_partitions(),
        });
    }
    let n = weights.cols();
    let rows = decomp.rows();
    let k = decomp.k();
    let tree = ReconfigurableAdderTree::new(packer.pack_units);

    // L2 psum buffer: one running n-vector per activation row, banked by
    // row id. The packer's conflict rule guarantees each pack touches a
    // bank at most once; validated below.
    let mut l2_psum = vec![vec![0.0f32; n]; rows];
    // L1 psum buffer (separate per Fig. 3).
    let mut l1_psum = vec![vec![0.0f32; n]; rows];

    for part in 0..decomp.num_partitions() {
        // --- L1 path: PWP retrieval + accumulate. ---
        for (row, psum) in l1_psum.iter_mut().enumerate().take(rows) {
            if let Some(idx) = decomp.l1_index(row, part) {
                let pwp_row = pwp.row(part, idx as usize);
                for (acc, &v) in psum.iter_mut().zip(pwp_row) {
                    *acc += v;
                }
            }
        }

        // --- L2 path: compressor → packer → dispatcher → adder tree. ---
        let rows_entries: Vec<(u32, Vec<(u8, bool)>)> = (0..rows)
            .filter_map(|row| {
                let entries: Vec<(u8, bool)> = decomp
                    .l2_tile(row, part)
                    .map(|e| (((e.col as usize) - part * k) as u8, e.value < 0))
                    .collect();
                if entries.is_empty() {
                    None
                } else {
                    Some((row as u32, entries))
                }
            })
            .collect();
        let output = pack_rows(rows_entries.iter().map(|(r, e)| (*r, e.as_slice())), packer);
        for pack in &output.packs {
            execute_pack(pack, part, k, weights, packer, &tree, &mut l2_psum);
        }
    }

    let mut out = Matrix::zeros(rows, n);
    for row in 0..rows {
        let acc = out.row_mut(row);
        for ((o, l1v), l2v) in acc.iter_mut().zip(&l1_psum[row]).zip(&l2_psum[row]) {
            *o = l1v + l2v;
        }
    }
    Ok(out)
}

/// Dispatches and reduces one pack, writing results back to the psum
/// banks.
///
/// # Panics
///
/// Panics (debug) if the pack violates the bank-conflict guarantee.
fn execute_pack(
    pack: &Pack,
    part: usize,
    k: usize,
    weights: &Matrix,
    packer: &PackerConfig,
    tree: &ReconfigurableAdderTree,
    l2_psum: &mut [Vec<f32>],
) {
    // Validate the packer's promise: each psum bank is touched at most
    // once per pack (step 5 of Fig. 4).
    let mut banks_seen = 0u64;
    for unit in &pack.units {
        if let PackUnit::PartialSum { row } = unit {
            let bank = *row as usize % packer.psum_banks;
            debug_assert_eq!(banks_seen & (1 << bank), 0, "psum bank {bank} hit twice in one pack");
            banks_seen |= 1 << bank;
        }
    }

    // Dispatcher (Fig. 5 step 4): label selects weight vs psum source,
    // index selects the row, value negates.
    let operands: Vec<(u32, Vec<f32>)> = pack
        .units
        .iter()
        .map(|unit| match *unit {
            PackUnit::Nonzero { row, col, negative } => {
                let w = weights.row(part * k + col as usize);
                let value = if negative { w.iter().map(|&v| -v).collect() } else { w.to_vec() };
                (row, value)
            }
            // Partial-sum unit: read the row's running psum and clear it —
            // the reduced sum (old psum + new corrections) is written back,
            // which is also how chained chunks of a split row compose.
            PackUnit::PartialSum { row } => {
                let slot = &mut l2_psum[row as usize];
                let width = slot.len();
                let value = std::mem::replace(slot, vec![0.0; width]);
                (row, value)
            }
        })
        .collect();

    // Reconfigurable adder tree (step 6) + crossbar writeback (step 7).
    for (row, sum) in tree.reduce(&operands) {
        let acc = &mut l2_psum[row as usize];
        for (a, v) in acc.iter_mut().zip(sum) {
            *a += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::{decompose, CalibrationConfig, Calibrator, PwpTable};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_core::SpikeMatrix;

    fn check_equivalence(rows: usize, cols: usize, density: f64, q: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let acts = SpikeMatrix::random(rows, cols, density, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q, max_iters: 8, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let decomp = decompose(&acts, &patterns);
        let weights = Matrix::random(cols, 24, &mut rng);
        let pwp = PwpTable::new(&patterns, &weights).expect("pwp");
        let hw =
            execute_layer(&decomp, &pwp, &weights, &PackerConfig::default()).expect("datapath");
        let reference = acts.spike_matmul(&weights).expect("dense");
        let diff = hw.max_abs_diff(&reference).expect("same shape");
        assert!(diff < 1e-3, "datapath diverged by {diff} (seed {seed})");
    }

    #[test]
    fn datapath_matches_dense_gemm_low_density() {
        check_equivalence(64, 48, 0.08, 16, 1);
    }

    #[test]
    fn datapath_matches_dense_gemm_high_density() {
        // High density produces oversize rows that must be split and
        // psum-chained across packs.
        check_equivalence(48, 64, 0.6, 16, 2);
    }

    #[test]
    fn datapath_matches_with_no_patterns() {
        // Empty pattern sets: the whole GEMM flows through the L2 path.
        let mut rng = StdRng::seed_from_u64(3);
        let acts = SpikeMatrix::random(32, 32, 0.3, &mut rng);
        let patterns = phi_core::LayerPatterns::new(16, vec![phi_core::PatternSet::empty(16); 2]);
        let decomp = decompose(&acts, &patterns);
        let weights = Matrix::random(32, 8, &mut rng);
        let pwp = PwpTable::new(&patterns, &weights).expect("pwp");
        let hw =
            execute_layer(&decomp, &pwp, &weights, &PackerConfig::default()).expect("datapath");
        let reference = acts.spike_matmul(&weights).expect("dense");
        assert!(hw.max_abs_diff(&reference).expect("shape") < 1e-3);
    }

    #[test]
    fn adder_tree_groups_contiguous_rows() {
        let tree = ReconfigurableAdderTree::new(8);
        let operands = vec![(0u32, vec![1.0, 2.0]), (0, vec![10.0, 20.0]), (3, vec![5.0, 5.0])];
        let reduced = tree.reduce(&operands);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced[0], (0, vec![11.0, 22.0]));
        assert_eq!(reduced[1], (3, vec![5.0, 5.0]));
    }

    #[test]
    #[should_panic(expected = "exceeds 8 adder-tree channels")]
    fn adder_tree_rejects_oversized_packs() {
        let tree = ReconfigurableAdderTree::new(8);
        let operands: Vec<(u32, Vec<f32>)> = (0..9).map(|i| (i, vec![0.0])).collect();
        tree.reduce(&operands);
    }

    #[test]
    fn datapath_with_tight_banks_still_correct() {
        // Two psum banks force heavy pack fragmentation; numbers must not
        // change.
        let mut rng = StdRng::seed_from_u64(4);
        let acts = SpikeMatrix::random(40, 32, 0.25, &mut rng);
        let patterns =
            Calibrator::new(CalibrationConfig { q: 8, max_iters: 6, ..Default::default() })
                .calibrate(&acts, &mut rng);
        let decomp = decompose(&acts, &patterns);
        let weights = Matrix::random(32, 8, &mut rng);
        let pwp = PwpTable::new(&patterns, &weights).expect("pwp");
        let tight = PackerConfig { psum_banks: 2, ..Default::default() };
        let hw = execute_layer(&decomp, &pwp, &weights, &tight).expect("datapath");
        let reference = acts.spike_matmul(&weights).expect("dense");
        assert!(hw.max_abs_diff(&reference).expect("shape") < 1e-3);
    }
}
