//! Off-chip DRAM model: DDR4-2133, 8Gb×8, 4 channels, 64 GB/s (Table 1).
//!
//! The paper drives DRAMsim3 with its access trace; we model the two
//! quantities that matter at this granularity — sustained bandwidth (which
//! bounds layer runtime under double buffering) and access energy (which
//! the Fig. 7d/Fig. 8 energy numbers are built from).

/// DRAM channel model.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// Access energy in picojoules per byte. Calibrated to the paper's own
    /// budget: Table 2 implies ~0.85 W total for Phi, of which Table 3's
    /// core+buffer is 0.35 W; dividing the remainder by the Fig. 12 traffic
    /// at full bandwidth yields ≈8 pJ/B — a DRAMsim3-style device-level
    /// number (I/O energy excluded).
    pub pj_per_byte: f64,
    /// Background (idle/refresh) power in watts, charged for the full
    /// runtime.
    pub background_watts: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        DramModel { bandwidth_bytes_per_s: 64e9, pj_per_byte: 8.0, background_watts: 0.08 }
    }
}

impl DramModel {
    /// Cycles (at `frequency_hz`) to transfer `bytes` at sustained
    /// bandwidth.
    pub fn transfer_cycles(&self, bytes: f64, frequency_hz: f64) -> f64 {
        bytes / self.bandwidth_bytes_per_s * frequency_hz
    }

    /// Access energy for `bytes`, in joules.
    pub fn access_energy_j(&self, bytes: f64) -> f64 {
        bytes * self.pj_per_byte * 1e-12
    }

    /// Background energy over `seconds`, in joules.
    pub fn background_energy_j(&self, seconds: f64) -> f64 {
        self.background_watts * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycles_scale_with_bytes() {
        let d = DramModel::default();
        // 128 bytes/cycle at 500 MHz and 64 GB/s.
        let cycles = d.transfer_cycles(1280.0, 500e6);
        assert!((cycles - 10.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_linearly() {
        let d = DramModel::default();
        let one = d.access_energy_j(1.0);
        let kilo = d.access_energy_j(1024.0);
        assert!((kilo / one - 1024.0).abs() < 1e-6);
    }

    #[test]
    fn background_energy_uses_runtime() {
        let d = DramModel::default();
        assert!((d.background_energy_j(2.0) - 0.16).abs() < 1e-12);
    }
}
