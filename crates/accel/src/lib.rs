//! Cycle-level simulator of the Phi accelerator (§4 of the paper).
//!
//! The architecture (Fig. 3) comprises four main blocks, each with a model
//! module here:
//!
//! * **Preprocessor** ([`matcher`], [`packer`]) — a 1-D systolic pattern
//!   matcher producing the two-level sparsity representation on the fly,
//!   followed by the compressor and the conflict-aware packer that builds
//!   8-unit Level-2 packs;
//! * **L1 Processor** ([`l1`]) — pattern-index-driven PWP retrieval through
//!   a 16→8 crossbar and adder tree, with a DRAM prefetcher that loads only
//!   the PWPs a tile actually uses;
//! * **L2 Processor** ([`l2`]) — pack-parallel processing through a
//!   dispatcher and an 8-channel reconfigurable adder tree of 32-wide SIMD
//!   nodes;
//! * **Spiking Neuron Array** ([`neuron`]) — 32 LIF lanes converting output
//!   tiles into next-layer spikes.
//!
//! Supporting models: [`tiling`] (the `m=256, k=16, n=32` K-first schedule),
//! [`dram`] (DDR4-2133 ×4 channel bandwidth/energy), [`traffic`] (per-layer
//! byte accounting for Fig. 12), [`energy`] (the Table 3 power/area
//! constants), and [`sim`] (the per-layer orchestration: L1 ∥ L2 with
//! per-output-tile synchronization, preprocessing overlapped, compute/DRAM
//! double buffering).
//!
//! The simulator follows the paper's own methodology (§5.1): counted
//! cycles and accesses drive constant per-event energy numbers taken from
//! the synthesis results the paper publishes.
//!
//! # Example
//!
//! ```
//! use phi_accel::{PhiConfig, PhiSimulator};
//! use phi_core::{CalibrationConfig, Calibrator};
//! use snn_core::{GemmShape, SpikeMatrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let acts = SpikeMatrix::random(128, 64, 0.1, &mut rng);
//! let patterns = Calibrator::new(CalibrationConfig { q: 32, ..Default::default() })
//!     .calibrate(&acts, &mut rng);
//! let sim = PhiSimulator::new(PhiConfig::default());
//! let report = sim.run_layer(&acts, &patterns, GemmShape::new(128, 64, 256), 1.0);
//! assert!(report.cycles > 0.0);
//! assert!(report.energy.total_mj() > 0.0);
//! ```

#![deny(missing_docs)]

pub mod backend;
pub mod config;
pub mod datapath;
pub mod dram;
pub mod energy;
pub mod l1;
pub mod l2;
pub mod matcher;
pub mod neuron;
pub mod packer;
pub mod report;
pub mod sim;
pub mod tiling;
pub mod traffic;

pub use backend::{
    BackendKind, CpuBackend, ExecutionBackend, LayerOutput, LayerWork, MetricsMode, ReadoutPlan,
    SimBackend,
};
// The execution-reuse vocabulary (`PHI_REUSE` knob and its counters),
// re-exported so backend callers can configure and observe the CPU
// path's product-sparsity pass without importing `phi_core` directly.
pub use config::PhiConfig;
pub use dram::DramModel;
pub use energy::{AreaBreakdown, EnergyBreakdown, EnergyModel};
pub use phi_core::{force_reuse, reuse_mode, ReuseMode, ReuseStats};
pub use report::{LayerReport, ModelReport};
pub use sim::PhiSimulator;
pub use traffic::TrafficReport;
