//! Layer-level orchestration of the Phi architecture.
//!
//! The timing model follows §4.1's overlap structure:
//!
//! * L1 and L2 processors run concurrently and synchronize per output tile:
//!   a tile costs `max(L1, L2)` cycles;
//! * preprocessing of a layer overlaps the previous layer's compute
//!   (K-first ordering emits spikes early), so a layer's wall clock is
//!   bounded below by its own matcher throughput but preprocessing is
//!   otherwise free;
//! * DRAM transfers are double-buffered against compute: the layer takes
//!   `max(compute, preprocessing, DRAM, LIF)` cycles.

use crate::config::PhiConfig;
use crate::energy::{BusyCycles, EnergyModel};
use crate::l1::L1Model;
use crate::l2::L2Model;
use crate::matcher::MatcherModel;
use crate::neuron::NeuronArrayModel;
use crate::packer::{pack_rows, PackerConfig};
use crate::report::{CycleBreakdown, LayerReport, ModelReport};
use crate::tiling::TileSchedule;
use crate::traffic::layer_traffic;
use phi_core::{decompose, Decomposition, LayerPatterns};
use snn_core::{GemmShape, SpikeMatrix};

/// One m-tile row's Level-2 corrections for one partition, in the packer's
/// input form: `(row offset within the tile, [(local column, is_negative)])`.
type PackerRow = (u32, Vec<(u8, bool)>);

/// The Phi accelerator simulator.
///
/// See the [crate-level example](crate) for typical use: calibrate patterns
/// with [`phi_core::Calibrator`], then hand the activations to
/// [`PhiSimulator::run_layer`]. Serving paths that already hold a
/// [`Decomposition`] (e.g. a `phi-runtime` batch) skip the matcher and call
/// [`PhiSimulator::run_decomposition`] directly.
#[derive(Debug, Clone)]
pub struct PhiSimulator {
    config: PhiConfig,
    energy: EnergyModel,
}

impl PhiSimulator {
    /// Creates a simulator with the default energy model.
    pub fn new(config: PhiConfig) -> Self {
        PhiSimulator { config, energy: EnergyModel::default() }
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &PhiConfig {
        &self.config
    }

    /// The active energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Simulates one layer.
    ///
    /// `activations` holds the (possibly row-subsampled) spike rows of the
    /// layer across timesteps; `shape.n` is the output width; `row_scale`
    /// extrapolates subsampled rows to the full layer (1.0 = exact).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` does not cover the activation width or
    /// `row_scale` is not positive.
    pub fn run_layer(
        &self,
        activations: &SpikeMatrix,
        patterns: &LayerPatterns,
        shape: GemmShape,
        row_scale: f64,
    ) -> LayerReport {
        assert!(row_scale > 0.0, "row_scale must be positive");
        let decomp = decompose(activations, patterns);
        self.run_decomposed(activations, &decomp, shape, row_scale, "layer")
    }

    /// Simulates one layer with a pre-computed decomposition (used when the
    /// caller also needs the decomposition, e.g. for reporting).
    ///
    /// # Panics
    ///
    /// Panics if `activations` disagrees with `decomp` on shape.
    pub fn run_decomposed(
        &self,
        activations: &SpikeMatrix,
        decomp: &Decomposition,
        shape: GemmShape,
        row_scale: f64,
        name: &str,
    ) -> LayerReport {
        assert_eq!(activations.rows(), decomp.rows(), "activation rows must match decomposition");
        assert_eq!(activations.cols(), decomp.cols(), "activation cols must match decomposition");
        self.run_decomposition(decomp, shape, row_scale, name)
    }

    /// Simulates one layer from its [`Decomposition`] alone.
    ///
    /// The decomposition is self-contained (shape, pattern sets, L1/L2
    /// contents and their statistics), so the original activation matrix is
    /// not needed — the batched serving runtime calls this with
    /// decompositions produced against a shared compiled artifact, without
    /// keeping the raw spikes around. `run_layer` / `run_decomposed` reduce
    /// to this method.
    ///
    /// # Panics
    ///
    /// Panics if `row_scale` is not positive.
    pub fn run_decomposition(
        &self,
        decomp: &Decomposition,
        shape: GemmShape,
        row_scale: f64,
        name: &str,
    ) -> LayerReport {
        assert!(row_scale > 0.0, "row_scale must be positive");
        let rows = decomp.rows();
        let k = decomp.k();
        let parts = decomp.num_partitions();
        let schedule = TileSchedule::new(
            rows,
            decomp.cols(),
            shape.n,
            self.config.tile_m,
            k,
            self.config.tile_n,
        );
        let n_tiles = schedule.n_tiles() as f64;

        let l1_model = L1Model::new(self.config.l1_window, self.config.channels);
        let l2_model = L2Model::new(self.config.channels);
        let packer_config = PackerConfig {
            pack_units: self.config.pack_units,
            windows: self.config.packer_windows,
            psum_banks: self.config.psum_banks,
        };

        let mut l1_cycles = 0.0f64;
        let mut l2_cycles = 0.0f64;
        let mut compute_cycles = 0.0f64;
        let mut total_packs = 0u64;
        let mut occupied_units = 0u64;
        let mut oversize_rows = 0u64;

        for mt in 0..schedule.m_tiles() {
            let (lo, hi) = schedule.m_range(mt);
            let l1_mt = l1_model.tile_cycles(decomp, lo, hi) as f64;
            // Pack each partition's surviving Level-2 rows. Each row's
            // corrections are sorted by column, so one sweep per row splits
            // them into contiguous per-partition runs — O(entries) instead
            // of re-filtering every row once per partition.
            let mut per_part: Vec<Vec<PackerRow>> = vec![Vec::new(); parts];
            for r in lo..hi.min(rows) {
                let row = decomp.l2_row(r);
                let mut i = 0;
                while i < row.len() {
                    let part = row[i].col as usize / k;
                    let mut entries = Vec::new();
                    while i < row.len() && row[i].col as usize / k == part {
                        entries.push(((row[i].col as usize - part * k) as u8, row[i].value < 0));
                        i += 1;
                    }
                    per_part[part].push(((r - lo) as u32, entries));
                }
            }
            let mut packs_mt = 0u64;
            for rows_entries in &per_part {
                let output =
                    pack_rows(rows_entries.iter().map(|(r, e)| (*r, e.as_slice())), &packer_config);
                packs_mt += output.packs.len() as u64;
                occupied_units += output.packs.iter().map(|p| p.units.len() as u64).sum::<u64>();
                oversize_rows += output.oversize_rows;
            }
            let l2_mt = l2_model.cycles(packs_mt) as f64;
            total_packs += packs_mt;
            l1_cycles += l1_mt * n_tiles;
            l2_cycles += l2_mt * n_tiles;
            // Per-output-tile synchronization (§4.1): the tile completes
            // when the slower processor finishes.
            compute_cycles += l1_mt.max(l2_mt) * n_tiles;
        }

        let matcher =
            MatcherModel::new(self.config.patterns_per_partition, self.config.matcher_lanes);
        let preproc_cycles = matcher.cycles(rows, parts) as f64;
        let lif = NeuronArrayModel::new(self.config.tile_n);
        let lif_cycles = lif.cycles(rows, shape.n) as f64;

        let traffic =
            layer_traffic(decomp, shape.n, total_packs, occupied_units, &self.config, row_scale);
        let dram_cycles = self
            .energy
            .dram
            .transfer_cycles(traffic.total_bytes(&self.config), self.config.frequency_hz);

        let breakdown = CycleBreakdown {
            preprocessor: preproc_cycles * row_scale,
            l1: l1_cycles * row_scale,
            l2: l2_cycles * row_scale,
            compute: compute_cycles * row_scale,
            lif: lif_cycles * row_scale,
            dram: dram_cycles,
        };
        let cycles =
            breakdown.compute.max(breakdown.preprocessor).max(breakdown.lif).max(breakdown.dram);

        let busy = BusyCycles {
            preprocessor: breakdown.preprocessor,
            l1: breakdown.l1,
            l2: breakdown.l2,
            lif: breakdown.lif,
            elapsed: cycles,
        };
        let energy = self.energy.energy(&busy, traffic.total_bytes(&self.config), &self.config);

        let pack_occupancy = if total_packs == 0 {
            0.0
        } else {
            occupied_units as f64 / (total_packs * self.config.pack_units as u64) as f64
        };

        let stats = decomp.stats();
        LayerReport {
            name: name.to_owned(),
            cycles,
            breakdown,
            traffic,
            energy,
            // Identical to the original activation matrix's nnz: the
            // decomposition is lossless, so bit_nnz carries it.
            bit_ops: stats.bit_nnz as f64 * row_scale * shape.n as f64,
            stats,
            pack_occupancy,
            oversize_rows,
        }
    }

    /// Aggregates layer reports into a model report.
    pub fn aggregate(layers: Vec<LayerReport>) -> ModelReport {
        ModelReport::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::{CalibrationConfig, Calibrator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(density: f64, clustered: bool) -> LayerReport {
        let mut rng = StdRng::seed_from_u64(123);
        let acts = if clustered {
            // Highly repetitive rows: Phi should fly.
            let proto = 0x5A5Au64;
            SpikeMatrix::from_fn(512, 64, |_, c| (proto >> (c % 16)) & 1 == 1)
        } else {
            SpikeMatrix::random(512, 64, density, &mut rng)
        };
        let patterns = Calibrator::new(CalibrationConfig { q: 64, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let sim = PhiSimulator::new(PhiConfig::default());
        sim.run_layer(&acts, &patterns, GemmShape::new(512, 64, 128), 1.0)
    }

    #[test]
    fn report_has_positive_cycles_and_energy() {
        let r = run(0.15, false);
        assert!(r.cycles > 0.0);
        assert!(r.energy.total_j() > 0.0);
        assert!(r.bit_ops > 0.0);
        assert_eq!(r.oversize_rows, 0);
    }

    #[test]
    fn cycles_bound_every_component() {
        let r = run(0.15, false);
        assert!(r.cycles >= r.breakdown.compute);
        assert!(r.cycles >= r.breakdown.dram);
        assert!(r.cycles >= r.breakdown.preprocessor);
    }

    #[test]
    fn denser_activations_cost_more_compute() {
        let sparse = run(0.05, false);
        let dense = run(0.4, false);
        assert!(
            dense.breakdown.compute > sparse.breakdown.compute,
            "dense {} vs sparse {}",
            dense.breakdown.compute,
            sparse.breakdown.compute
        );
    }

    #[test]
    fn clustered_data_reduces_l2_work() {
        let clustered = run(0.3, true);
        let random = run(0.3, false);
        // Perfectly repetitive rows all match patterns exactly: essentially
        // no L2 packs, so L2 cycles collapse.
        assert!(clustered.breakdown.l2 < random.breakdown.l2 / 2.0);
    }

    #[test]
    fn row_scale_multiplies_compute() {
        let mut rng = StdRng::seed_from_u64(5);
        let acts = SpikeMatrix::random(128, 32, 0.2, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q: 16, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let sim = PhiSimulator::new(PhiConfig::default());
        let r1 = sim.run_layer(&acts, &patterns, GemmShape::new(128, 32, 32), 1.0);
        let r2 = sim.run_layer(&acts, &patterns, GemmShape::new(128, 32, 32), 3.0);
        assert!((r2.breakdown.compute - 3.0 * r1.breakdown.compute).abs() < 1e-6);
        assert!((r2.bit_ops - 3.0 * r1.bit_ops).abs() < 1e-6);
    }

    #[test]
    fn run_decomposition_matches_run_layer() {
        // The activation-free entry point must agree with the full path in
        // every reported quantity (the decomposition carries the nnz).
        let mut rng = StdRng::seed_from_u64(9);
        let acts = SpikeMatrix::random(256, 48, 0.2, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q: 32, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let decomp = phi_core::decompose(&acts, &patterns);
        let sim = PhiSimulator::new(PhiConfig::default());
        let shape = GemmShape::new(256, 48, 96);
        let via_layer = sim.run_layer(&acts, &patterns, shape, 2.0);
        let via_decomp = sim.run_decomposition(&decomp, shape, 2.0, "layer");
        assert_eq!(via_layer.cycles, via_decomp.cycles);
        assert_eq!(via_layer.breakdown, via_decomp.breakdown);
        assert_eq!(via_layer.bit_ops, via_decomp.bit_ops);
        assert_eq!(via_layer.energy.total_j(), via_decomp.energy.total_j());
    }

    #[test]
    #[should_panic(expected = "activation rows must match decomposition")]
    fn run_decomposed_rejects_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(10);
        let acts = SpikeMatrix::random(8, 16, 0.2, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q: 4, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let decomp = phi_core::decompose(&acts, &patterns);
        let other = SpikeMatrix::zeros(9, 16);
        PhiSimulator::new(PhiConfig::default()).run_decomposed(
            &other,
            &decomp,
            GemmShape::new(9, 16, 16),
            1.0,
            "layer",
        );
    }

    #[test]
    #[should_panic(expected = "row_scale must be positive")]
    fn zero_row_scale_is_rejected() {
        let acts = SpikeMatrix::zeros(4, 16);
        let patterns = Calibrator::new(CalibrationConfig { q: 4, ..Default::default() })
            .calibrate(&acts, &mut StdRng::seed_from_u64(0));
        PhiSimulator::new(PhiConfig::default()).run_layer(
            &acts,
            &patterns,
            GemmShape::new(4, 16, 16),
            0.0,
        );
    }
}
