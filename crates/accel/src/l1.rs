//! The L1 processor (§4.4): pattern-index-driven PWP retrieval and
//! reduction.
//!
//! Per cycle the processor examines a window of 16 consecutive entries of
//! one row of the pattern-index matrix (16 partitions), routes up to 8
//! non-zero indices through the 16→8 crossbar to the adder tree, and
//! accumulates their PWP rows into the row's L1 partial sum. Windows with
//! more than 8 assigned patterns take an extra cycle per additional 8
//! (§4.4's two-case logic); windows with none still cost the scan cycle
//! (the paper's "straightforward zero-skipping mechanism with little
//! compromise" — the index matrix is ~50% dense so perfect skipping would
//! save little).

use phi_core::Decomposition;

/// Timing model of the L1 processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Model {
    /// Pattern-index entries examined per cycle (16).
    pub window: usize,
    /// Adder-tree input channels (8).
    pub channels: usize,
}

impl L1Model {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `channels` is zero.
    pub fn new(window: usize, channels: usize) -> Self {
        assert!(window > 0 && channels > 0, "window and channels must be nonzero");
        L1Model { window, channels }
    }

    /// Cycles to process rows `row_lo..row_hi` of the pattern-index matrix
    /// for one `n`-tile.
    pub fn tile_cycles(&self, decomp: &Decomposition, row_lo: usize, row_hi: usize) -> u64 {
        let parts = decomp.num_partitions();
        let mut cycles = 0u64;
        for r in row_lo..row_hi.min(decomp.rows()) {
            let mut part = 0;
            while part < parts {
                let end = (part + self.window).min(parts);
                let nnz = (part..end).filter(|&p| decomp.l1_index(r, p).is_some()).count();
                cycles += (nnz.div_ceil(self.channels)).max(1) as u64;
                part = end;
            }
        }
        cycles
    }

    /// PWP accumulations performed in the same region (energy events).
    pub fn accumulations(&self, decomp: &Decomposition, row_lo: usize, row_hi: usize) -> u64 {
        (row_lo..row_hi.min(decomp.rows()))
            .map(|r| {
                (0..decomp.num_partitions()).filter(|&p| decomp.l1_index(r, p).is_some()).count()
                    as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::{decompose, LayerPatterns, Pattern, PatternSet};
    use snn_core::SpikeMatrix;

    /// Decomposition where every tile of every row matches the single
    /// pattern exactly (index matrix all-assigned).
    fn fully_assigned(rows: usize, parts: usize) -> Decomposition {
        let k = 4;
        let pattern = 0b0110u64;
        let sets = vec![PatternSet::new(k, vec![Pattern::new(pattern, k)]); parts];
        let patterns = LayerPatterns::new(k, sets);
        let acts = SpikeMatrix::from_fn(rows, parts * k, |_, c| (pattern >> (c % k)) & 1 == 1);
        decompose(&acts, &patterns)
    }

    /// Decomposition with no assignments at all.
    fn fully_unassigned(rows: usize, parts: usize) -> Decomposition {
        let k = 4;
        let patterns = LayerPatterns::new(k, vec![PatternSet::empty(k); parts]);
        let acts = SpikeMatrix::zeros(rows, parts * k);
        decompose(&acts, &patterns)
    }

    #[test]
    fn dense_index_matrix_needs_two_cycles_per_window() {
        // 16 assigned entries per window, 8 channels: 2 cycles.
        let d = fully_assigned(4, 16);
        let m = L1Model::new(16, 8);
        assert_eq!(m.tile_cycles(&d, 0, 4), 4 * 2);
    }

    #[test]
    fn empty_window_still_costs_a_scan_cycle() {
        let d = fully_unassigned(3, 16);
        let m = L1Model::new(16, 8);
        assert_eq!(m.tile_cycles(&d, 0, 3), 3);
        assert_eq!(m.accumulations(&d, 0, 3), 0);
    }

    #[test]
    fn partial_window_rounds_up() {
        // 20 partitions: windows of 16 + 4; fully assigned → 2 + 1 cycles.
        let d = fully_assigned(1, 20);
        let m = L1Model::new(16, 8);
        assert_eq!(m.tile_cycles(&d, 0, 1), 3);
        assert_eq!(m.accumulations(&d, 0, 1), 20);
    }

    #[test]
    fn row_range_is_clamped() {
        let d = fully_assigned(2, 4);
        let m = L1Model::new(16, 8);
        assert_eq!(m.tile_cycles(&d, 0, 100), m.tile_cycles(&d, 0, 2));
    }
}
