//! Architecture configuration — the paper's Table 1 setup.

/// Phi architecture parameters. Defaults reproduce Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PhiConfig {
    /// Output-row tile size `m` (rows per output tile).
    pub tile_m: usize,
    /// Partition width `k` (pattern length).
    pub tile_k: usize,
    /// Output-column tile size `n` (SIMD width of both adder trees).
    pub tile_n: usize,
    /// Patterns per partition `q`.
    pub patterns_per_partition: usize,
    /// Clock frequency in Hz (500 MHz, 28 nm).
    pub frequency_hz: f64,
    /// Adder-tree channels in each of the L1 and L2 processors.
    pub channels: usize,
    /// Pattern-index entries the L1 processor examines per cycle.
    pub l1_window: usize,
    /// Parallel matcher lanes in the preprocessor (row-tiles matched per
    /// cycle). The paper's preprocessor area (0.099 mm², the largest logic
    /// block in Table 3) and its "preprocessing overhead effectively
    /// eliminated" claim (§4.1) imply several concurrent systolic lanes.
    pub matcher_lanes: usize,
    /// Units per Level-2 pack.
    pub pack_units: usize,
    /// Packer windows (incomplete packs held concurrently).
    pub packer_windows: usize,
    /// Partial-sum buffer banks (bank-conflict domain of the packer).
    pub psum_banks: usize,
    /// Level-2 pack buffer bytes (Table 1: 4 KB).
    pub pack_buffer_bytes: usize,
    /// Weight buffer bytes (Table 1: 16 KB).
    pub weight_buffer_bytes: usize,
    /// PWP buffer bytes (Table 1: 64 KB).
    pub pwp_buffer_bytes: usize,
    /// Pattern-index buffer bytes (Table 1: 28 KB).
    pub index_buffer_bytes: usize,
    /// Partial-sum buffer bytes (Table 1: 128 KB, L1 + L2 halves).
    pub psum_buffer_bytes: usize,
    /// Weight element bytes (8-bit integer weights).
    pub weight_bytes: usize,
    /// PWP element bytes (quantized like weights).
    pub pwp_bytes: usize,
    /// Partial-sum element bytes.
    pub psum_bytes: usize,
    /// Whether the PWP prefetcher is enabled (§4.4).
    pub prefetch: bool,
    /// Whether the compact Level-2 pack structure is used for DRAM traffic
    /// (§5.5.1); disabling models the "w/o compress" bar of Fig. 12a.
    pub compress: bool,
}

impl Default for PhiConfig {
    fn default() -> Self {
        PhiConfig {
            tile_m: 256,
            tile_k: 16,
            tile_n: 32,
            patterns_per_partition: 128,
            frequency_hz: 500e6,
            channels: 8,
            l1_window: 16,
            matcher_lanes: 4,
            pack_units: 8,
            packer_windows: 4,
            psum_banks: 8,
            pack_buffer_bytes: 4 << 10,
            weight_buffer_bytes: 16 << 10,
            pwp_buffer_bytes: 64 << 10,
            index_buffer_bytes: 28 << 10,
            psum_buffer_bytes: 128 << 10,
            weight_bytes: 1,
            pwp_bytes: 1,
            psum_bytes: 2,
            prefetch: true,
            compress: true,
        }
    }
}

impl PhiConfig {
    /// Total on-chip buffer capacity in bytes (Fig. 7d's swept quantity).
    pub fn total_buffer_bytes(&self) -> usize {
        self.pack_buffer_bytes
            + self.weight_buffer_bytes
            + self.pwp_buffer_bytes
            + self.index_buffer_bytes
            + self.psum_buffer_bytes
    }

    /// Scales every buffer proportionally so the total equals
    /// `total_bytes` (used by the Fig. 7d sweep).
    pub fn with_total_buffer_bytes(mut self, total_bytes: usize) -> Self {
        let current = self.total_buffer_bytes() as f64;
        let scale = total_bytes as f64 / current;
        let adjust = |b: usize| ((b as f64 * scale).round() as usize).max(1024);
        self.pack_buffer_bytes = adjust(self.pack_buffer_bytes);
        self.weight_buffer_bytes = adjust(self.weight_buffer_bytes);
        self.pwp_buffer_bytes = adjust(self.pwp_buffer_bytes);
        self.index_buffer_bytes = adjust(self.index_buffer_bytes);
        self.psum_buffer_bytes = adjust(self.psum_buffer_bytes);
        self
    }

    /// Seconds per cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = PhiConfig::default();
        assert_eq!(c.tile_m, 256);
        assert_eq!(c.tile_k, 16);
        assert_eq!(c.tile_n, 32);
        assert_eq!(c.patterns_per_partition, 128);
        assert_eq!(c.total_buffer_bytes(), (4 + 16 + 64 + 28 + 128) << 10);
    }

    #[test]
    fn buffer_rescale_hits_target() {
        let c = PhiConfig::default().with_total_buffer_bytes(480 << 10);
        let total = c.total_buffer_bytes() as f64;
        assert!((total - (480 << 10) as f64).abs() / total < 0.01);
    }

    #[test]
    fn cycle_time_is_2ns_at_500mhz() {
        assert!((PhiConfig::default().cycle_time() - 2e-9).abs() < 1e-15);
    }
}
