//! Pluggable execution backends: *what* to compute is fixed by the Phi
//! decomposition; *how* it runs — and what gets accounted — is a backend.
//!
//! The paper's hierarchical pattern sparsity defines a functional program
//! per layer (Level-1 PWP accumulations plus Level-2 corrections) that is
//! independent of how cycles are modeled. [`ExecutionBackend`] captures
//! that split:
//!
//! * [`SimBackend`] wraps [`PhiSimulator`] — cycle/energy accounting of
//!   the Phi accelerator, bit-identical to calling the simulator directly.
//!   Used when a batch asks for [`MetricsMode::FullSim`].
//! * [`CpuBackend`] executes the decomposition directly on the host: the
//!   PWP-based sparse matmul — cross-row product-sparsity reuse
//!   ([`phi_core::phi_matmul_batch_reuse`]) by default, the rayon-parallel
//!   per-row sweep ([`phi_core::par_phi_matmul`]) under `PHI_REUSE=off` —
//!   with no tile scheduler, packer walk, or traffic/energy bookkeeping
//!   on the hot path. It cannot model hardware; it exists to produce
//!   outputs as fast as the host allows.
//!
//! Both backends compute readout outputs through the same row-independent
//! kernel, so their functional results are bit-identical — the equivalence
//! the serving property tests pin down.

use crate::config::PhiConfig;
use crate::report::LayerReport;
use crate::sim::PhiSimulator;
use phi_core::{
    par_phi_matmul, phi_matmul_batch_reuse, reuse_mode, Decomposition, PwpTable, ReuseMode,
    ReuseStats,
};
use snn_core::{GemmShape, Matrix};

/// A value-level backend choice, for configuration surfaces (server
/// configs, CLI flags, environment knobs) that pick an execution backend
/// at run time rather than compile time.
///
/// [`BackendKind::create`] instantiates the chosen backend behind a
/// `Box<dyn ExecutionBackend>` — the trait is object-safe, and the boxed
/// form implements [`ExecutionBackend`] itself, so code generic over a
/// backend accepts either a concrete type or a configured box.
///
/// ```
/// use phi_accel::{BackendKind, ExecutionBackend};
///
/// let kind: BackendKind = "cpu".parse()?;
/// let backend = kind.create();
/// assert_eq!(backend.name(), "cpu");
/// assert!(!backend.models_hardware());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The fast host-CPU kernel backend ([`CpuBackend`]): outputs only.
    /// The default — serving fronts want throughput unless asked otherwise.
    #[default]
    Cpu,
    /// The cycle-accurate simulator backend ([`SimBackend`]) with the
    /// default [`PhiConfig`]: full hardware accounting available.
    Sim,
}

impl BackendKind {
    /// Instantiates the chosen backend.
    pub fn create(self) -> Box<dyn ExecutionBackend> {
        match self {
            BackendKind::Cpu => Box::new(CpuBackend),
            BackendKind::Sim => Box::new(SimBackend::default()),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::Cpu => "cpu",
            BackendKind::Sim => "sim",
        })
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu" => Ok(BackendKind::Cpu),
            "sim" => Ok(BackendKind::Sim),
            other => Err(format!("unknown backend '{other}' (expected 'cpu' or 'sim')")),
        }
    }
}

/// How much accounting a batch wants from its backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsMode {
    /// Functional outputs only: no cycle, traffic, or energy modeling on
    /// the hot path. Every backend supports this.
    OutputsOnly,
    /// Full cycle-accurate simulation per layer. Only backends that model
    /// hardware ([`ExecutionBackend::models_hardware`]) support this.
    FullSim,
}

/// The readout half of a layer's work: the precomputed pattern–weight
/// products and the raw weights they were folded from.
#[derive(Debug, Clone, Copy)]
pub struct ReadoutPlan<'a> {
    /// Pattern–weight products for the layer's patterns.
    pub pwp: &'a PwpTable,
    /// The layer weights (`K × N`), for Level-2 corrections.
    pub weights: &'a Matrix,
}

/// Everything a backend needs to execute one decomposed layer.
#[derive(Debug)]
pub struct LayerWork<'a> {
    /// The layer's (possibly batch-fused) L1/L2 decomposition.
    pub decomp: &'a Decomposition,
    /// GEMM shape of the layer.
    pub shape: GemmShape,
    /// Extrapolation from the decomposed rows to the full layer.
    pub row_scale: f64,
    /// Layer name, carried into simulator reports.
    pub name: &'a str,
    /// When present, the backend computes the functional output through
    /// the PWP path.
    pub readout: Option<ReadoutPlan<'a>>,
}

/// What a backend produced for one layer.
#[derive(Debug)]
pub struct LayerOutput {
    /// Hardware accounting — `Some` only under [`MetricsMode::FullSim`]
    /// on a backend that models hardware.
    pub report: Option<LayerReport>,
    /// Functional output rows, when a [`ReadoutPlan`] was supplied.
    pub readout: Option<Matrix>,
    /// Cross-row reuse accounting — `Some` only when the readout ran
    /// through a product-sparsity [`phi_core::ReusePlan`]
    /// ([`CpuBackend`] under [`phi_core::ReuseMode::Auto`]).
    pub reuse: Option<ReuseStats>,
}

/// A compute engine that executes decomposed layers.
///
/// Implementations must be deterministic in their functional outputs:
/// given the same [`LayerWork`], every backend returns bit-identical
/// readout matrices (the shared row-independent kernel guarantees this
/// for the built-in backends).
pub trait ExecutionBackend: Send + Sync {
    /// Short identifier used in reports and error messages.
    fn name(&self) -> &'static str;

    /// Whether this backend can honor [`MetricsMode::FullSim`].
    fn models_hardware(&self) -> bool;

    /// The metrics mode a batch gets when the caller does not pick one:
    /// full simulation when the backend models hardware, outputs-only
    /// otherwise.
    fn default_metrics(&self) -> MetricsMode {
        if self.models_hardware() {
            MetricsMode::FullSim
        } else {
            MetricsMode::OutputsOnly
        }
    }

    /// Executes one decomposed layer.
    ///
    /// Backends that do not model hardware return `report: None`
    /// regardless of `metrics`; callers wanting a hard failure instead
    /// should check [`ExecutionBackend::models_hardware`] up front (the
    /// serving executor does).
    fn run_layer(&self, work: &LayerWork<'_>, metrics: MetricsMode) -> LayerOutput;
}

// A boxed backend is itself a backend, so run-time-configured choices
// ([`BackendKind::create`]) slot into code generic over `B:
// ExecutionBackend` without a second code path.
impl ExecutionBackend for Box<dyn ExecutionBackend> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn models_hardware(&self) -> bool {
        (**self).models_hardware()
    }

    fn default_metrics(&self) -> MetricsMode {
        (**self).default_metrics()
    }

    fn run_layer(&self, work: &LayerWork<'_>, metrics: MetricsMode) -> LayerOutput {
        (**self).run_layer(work, metrics)
    }
}

/// Computes the functional readout for a layer, when planned — the one
/// shared kernel both built-in backends answer outputs through.
fn compute_readout(work: &LayerWork<'_>) -> Option<Matrix> {
    work.readout.map(|plan| {
        par_phi_matmul(work.decomp, plan.pwp, plan.weights)
            .expect("readout plan shapes must match the decomposition")
    })
}

/// The simulator-backed execution backend: functional outputs plus the
/// cycle-accurate [`LayerReport`]s of [`PhiSimulator::run_decomposition`],
/// bit-identical to calling the simulator directly.
#[derive(Debug, Clone)]
pub struct SimBackend {
    sim: PhiSimulator,
}

impl Default for SimBackend {
    fn default() -> Self {
        SimBackend::new(PhiConfig::default())
    }
}

impl SimBackend {
    /// Creates a simulator backend with the given accelerator config.
    pub fn new(config: PhiConfig) -> Self {
        SimBackend { sim: PhiSimulator::new(config) }
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &PhiSimulator {
        &self.sim
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn models_hardware(&self) -> bool {
        true
    }

    fn run_layer(&self, work: &LayerWork<'_>, metrics: MetricsMode) -> LayerOutput {
        let report = (metrics == MetricsMode::FullSim).then(|| {
            self.sim.run_decomposition(work.decomp, work.shape, work.row_scale, work.name)
        });
        LayerOutput { report, readout: compute_readout(work), reuse: None }
    }
}

/// The fast host-CPU backend: executes the decomposition directly via the
/// PWP sparse matmul, with zero accelerator bookkeeping.
///
/// Its outputs are bit-identical to [`SimBackend`]'s; it never produces a
/// [`LayerReport`]. Under [`phi_core::ReuseMode::Auto`] (the default;
/// `PHI_REUSE=off` or [`phi_core::force_reuse`] disables it) outputs-only
/// batches run through the cross-row product-sparsity plan
/// ([`phi_core::phi_matmul_batch_reuse`]): each distinct pattern-weight
/// product and shared Level-1 partial in the fused batch is computed once
/// and rows assemble from the shared partials — bit-identical to the
/// per-row [`phi_core::par_phi_matmul`] sweep by the prefix
/// accumulation-order rule (see `phi_core::pwp`). The inner accumulation
/// runs on the runtime-dispatched [`phi_core::simd`] kernels —
/// elementwise `f32` adds with no reassociation — so readouts are also
/// bit-identical across every dispatch level (`PHI_SIMD=off|scalar|auto`)
/// and both reuse modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuBackend;

impl ExecutionBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn models_hardware(&self) -> bool {
        false
    }

    fn run_layer(&self, work: &LayerWork<'_>, metrics: MetricsMode) -> LayerOutput {
        debug_assert!(
            metrics == MetricsMode::OutputsOnly,
            "CpuBackend cannot model hardware; callers must request OutputsOnly"
        );
        if reuse_mode() == ReuseMode::Auto {
            if let Some(plan) = work.readout {
                let (readout, stats) = phi_matmul_batch_reuse(work.decomp, plan.pwp, plan.weights)
                    .expect("readout plan shapes must match the decomposition");
                return LayerOutput { report: None, readout: Some(readout), reuse: Some(stats) };
            }
        }
        LayerOutput { report: None, readout: compute_readout(work), reuse: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core::{decompose, phi_matmul, CalibrationConfig, Calibrator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_core::SpikeMatrix;

    struct Fixture {
        decomp: Decomposition,
        pwp: PwpTable,
        weights: Matrix,
        shape: GemmShape,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = StdRng::seed_from_u64(seed);
        let acts = SpikeMatrix::random(64, 48, 0.2, &mut rng);
        let patterns = Calibrator::new(CalibrationConfig { q: 16, ..Default::default() })
            .calibrate(&acts, &mut rng);
        let weights = Matrix::random(48, 12, &mut rng);
        let pwp = PwpTable::new(&patterns, &weights).unwrap();
        let decomp = decompose(&acts, &patterns);
        Fixture { decomp, pwp, weights, shape: GemmShape::new(64, 48, 12) }
    }

    fn work<'a>(f: &'a Fixture, readout: bool) -> LayerWork<'a> {
        LayerWork {
            decomp: &f.decomp,
            shape: f.shape,
            row_scale: 2.0,
            name: "layer",
            readout: readout.then_some(ReadoutPlan { pwp: &f.pwp, weights: &f.weights }),
        }
    }

    #[test]
    fn backends_produce_bit_identical_readouts() {
        let f = fixture(11);
        let sim = SimBackend::default().run_layer(&work(&f, true), MetricsMode::FullSim);
        let cpu = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        assert!(sim.readout.is_some());
        assert_eq!(sim.readout, cpu.readout);
        // Both equal the sequential reference kernel bit-for-bit.
        let reference = phi_matmul(&f.decomp, &f.pwp, &f.weights).unwrap();
        assert_eq!(cpu.readout.unwrap(), reference);
    }

    #[test]
    fn forced_scalar_readout_is_bit_identical_to_auto_dispatch() {
        use phi_core::simd::{self, SimdLevel};
        let f = fixture(16);
        let auto = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        let prev = simd::force(SimdLevel::Scalar);
        let scalar = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        simd::force(prev);
        // Matrix equality is exact (f32 bit patterns compare through ==
        // with no NaNs in play), so this pins SIMD == scalar end to end.
        assert_eq!(auto.readout, scalar.readout);
        assert!(auto.readout.is_some());
    }

    #[test]
    fn reuse_off_readout_is_bit_identical_to_auto() {
        let f = fixture(17);
        let prev = phi_core::force_reuse(phi_core::ReuseMode::Auto);
        let auto = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        phi_core::force_reuse(phi_core::ReuseMode::Off);
        let off = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        phi_core::force_reuse(prev);
        assert_eq!(auto.readout, off.readout);
        assert!(auto.readout.is_some());
        // The planned path accounts its work; the per-row path reports
        // nothing to account.
        let stats = auto.reuse.expect("auto mode reports reuse stats");
        assert_eq!(stats.rows, 64);
        assert!(stats.term_rows_computed <= stats.term_rows_total);
        assert!(off.reuse.is_none());
    }

    #[test]
    fn sim_backend_reports_are_bit_identical_to_the_simulator() {
        let f = fixture(12);
        let out = SimBackend::default().run_layer(&work(&f, false), MetricsMode::FullSim);
        let report = out.report.expect("FullSim produces a report");
        let direct = PhiSimulator::new(PhiConfig::default())
            .run_decomposition(&f.decomp, f.shape, 2.0, "layer");
        assert_eq!(report.cycles, direct.cycles);
        assert_eq!(report.breakdown, direct.breakdown);
        assert_eq!(report.energy.total_j(), direct.energy.total_j());
        assert_eq!(report.bit_ops, direct.bit_ops);
        assert!(out.readout.is_none());
    }

    #[test]
    fn outputs_only_skips_the_simulator() {
        let f = fixture(13);
        let out = SimBackend::default().run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        assert!(out.report.is_none());
        assert!(out.readout.is_some());
    }

    #[test]
    fn cpu_backend_never_reports_hardware() {
        let f = fixture(14);
        let out = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        assert!(out.report.is_none());
        assert!(!CpuBackend.models_hardware());
    }

    #[test]
    fn backend_kind_round_trips_and_creates_the_right_backend() {
        for kind in [BackendKind::Cpu, BackendKind::Sim] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
            let backend = kind.create();
            assert_eq!(backend.name(), kind.to_string());
            assert_eq!(backend.models_hardware(), kind == BackendKind::Sim);
        }
        assert_eq!(BackendKind::default(), BackendKind::Cpu);
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    fn boxed_backend_delegates_to_its_inner_backend() {
        let f = fixture(15);
        let boxed: Box<dyn ExecutionBackend> = BackendKind::Cpu.create();
        assert_eq!(boxed.default_metrics(), MetricsMode::OutputsOnly);
        let out = boxed.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        let direct = CpuBackend.run_layer(&work(&f, true), MetricsMode::OutputsOnly);
        assert_eq!(out.readout, direct.readout);
        assert!(out.readout.is_some());
    }

    #[test]
    fn default_metrics_follow_hardware_modeling() {
        assert_eq!(SimBackend::default().default_metrics(), MetricsMode::FullSim);
        assert_eq!(CpuBackend.default_metrics(), MetricsMode::OutputsOnly);
        assert_eq!(SimBackend::default().name(), "sim");
        assert_eq!(CpuBackend.name(), "cpu");
    }
}
