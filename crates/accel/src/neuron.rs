//! The Spiking Neuron Array: a bank of LIF lanes converting accumulated
//! output tiles into next-layer spikes.
//!
//! Functionally this is [`snn_core::LifLayer`] (shared with the training
//! substrate so the hardware and the algorithm cannot disagree on neuron
//! semantics); here we add the timing model — `n` lanes consume one
//! output-tile row per cycle — and a helper that converts a full output
//! matrix into spikes, which the end-to-end pipeline tests use.

use snn_core::{LifConfig, LifLayer, Matrix, SpikeMatrix};

/// Timing model of the neuron array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeuronArrayModel {
    /// Parallel LIF lanes (= tile width `n`, 32 in Table 1).
    pub lanes: usize,
}

impl NeuronArrayModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "lanes must be nonzero");
        NeuronArrayModel { lanes }
    }

    /// Cycles to convert an `rows × n_cols` output region: one row of
    /// `lanes` values per cycle.
    pub fn cycles(&self, rows: usize, n_cols: usize) -> u64 {
        (rows as u64) * (n_cols.div_ceil(self.lanes)) as u64
    }
}

/// Applies LIF dynamics column-wise to a membrane-current matrix whose rows
/// are successive timesteps of the same neuron population, producing the
/// next layer's spike matrix.
///
/// `currents` rows are grouped as `timesteps` blocks of the same population
/// (row `t * population + i` is population row `i` at timestep `t` when
/// `layout_time_major` is true; otherwise rows are independent neurons with
/// a single step each).
pub fn lif_convert(currents: &Matrix, config: LifConfig, timesteps: usize) -> SpikeMatrix {
    let rows = currents.rows();
    let cols = currents.cols();
    if timesteps <= 1 || !rows.is_multiple_of(timesteps) {
        // Stateless conversion: every row is an independent single step.
        let mut out = SpikeMatrix::zeros(rows, cols);
        for r in 0..rows {
            let mut lif = LifLayer::new(cols, config);
            let spikes = lif.step(currents.row(r));
            for (c, &s) in spikes.iter().enumerate() {
                if s {
                    out.set(r, c, true);
                }
            }
        }
        return out;
    }
    let population = rows / timesteps;
    let mut out = SpikeMatrix::zeros(rows, cols);
    for i in 0..population {
        let mut lif = LifLayer::new(cols, config);
        for t in 0..timesteps {
            let r = t * population + i;
            let spikes = lif.step(currents.row(r));
            for (c, &s) in spikes.iter().enumerate() {
                if s {
                    out.set(r, c, true);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_cover_wide_tiles() {
        let m = NeuronArrayModel::new(32);
        assert_eq!(m.cycles(256, 32), 256);
        assert_eq!(m.cycles(256, 64), 512);
        assert_eq!(m.cycles(10, 33), 20);
    }

    #[test]
    fn lif_convert_thresholds_currents() {
        let currents = Matrix::from_rows(&[vec![1.5, 0.2], vec![0.4, 1.0]]).unwrap();
        let spikes = lif_convert(&currents, LifConfig::default(), 1);
        assert!(spikes.get(0, 0));
        assert!(!spikes.get(0, 1));
        assert!(!spikes.get(1, 0));
        assert!(spikes.get(1, 1));
    }

    #[test]
    fn lif_convert_carries_membrane_across_timesteps() {
        // Population of 1 neuron column over 2 timesteps: 0.6 then 0.6
        // crosses threshold only at t=1.
        let currents = Matrix::from_rows(&[vec![0.6], vec![0.6]]).unwrap();
        let spikes = lif_convert(&currents, LifConfig::default(), 2);
        assert!(!spikes.get(0, 0));
        assert!(spikes.get(1, 0));
    }
}
