//! Energy and area model, seeded from the paper's own synthesis results
//! (Table 3: 28 nm, 500 MHz).
//!
//! Per-component dynamic power is charged for busy cycles, plus a leakage
//! fraction for idle cycles; DRAM access energy comes from
//! [`crate::dram::DramModel`]. The buffer's power and area scale with its
//! configured capacity using CACTI-like exponents (access energy ~ √size,
//! leakage/area ~ size), which is what produces the Fig. 7d trade-off.

use crate::config::PhiConfig;
use crate::dram::DramModel;
use std::fmt;

/// Reference buffer capacity the Table 3 numbers correspond to (240 KB).
const BASELINE_BUFFER_BYTES: f64 = 240.0 * 1024.0;

/// Busy-cycle counts per component for one simulated region.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyCycles {
    /// Preprocessor (matcher + compressor + packer) busy cycles.
    pub preprocessor: f64,
    /// L1 processor busy cycles.
    pub l1: f64,
    /// L2 processor busy cycles.
    pub l2: f64,
    /// LIF neuron array busy cycles.
    pub lif: f64,
    /// Total elapsed cycles (wall clock).
    pub elapsed: f64,
}

impl BusyCycles {
    /// Element-wise accumulation.
    pub fn add(&mut self, other: &BusyCycles) {
        self.preprocessor += other.preprocessor;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.lif += other.lif;
        self.elapsed += other.elapsed;
    }
}

/// Energy split used in Fig. 8's stacked bars.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Compute logic (preprocessor + L1 + L2 + LIF), joules.
    pub core_j: f64,
    /// On-chip buffer, joules.
    pub buffer_j: f64,
    /// Off-chip DRAM, joules.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.core_j + self.buffer_j + self.dram_j
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_j() * 1e3
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.core_j += other.core_j;
        self.buffer_j += other.buffer_j;
        self.dram_j += other.dram_j;
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {:.3} mJ | buffer {:.3} mJ | dram {:.3} mJ",
            self.core_j * 1e3,
            self.buffer_j * 1e3,
            self.dram_j * 1e3
        )
    }
}

/// Area split (Table 3), in mm² at 28 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Preprocessor area.
    pub preprocessor: f64,
    /// L1 processor area.
    pub l1: f64,
    /// L2 processor area.
    pub l2: f64,
    /// LIF neuron array area.
    pub lif: f64,
    /// On-chip buffer area.
    pub buffer: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.preprocessor + self.l1 + self.l2 + self.lif + self.buffer
    }
}

/// The Phi energy/area model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Preprocessor dynamic power at full activity (mW).
    pub preprocessor_mw: f64,
    /// L1 processor dynamic power (mW).
    pub l1_mw: f64,
    /// L2 processor dynamic power (mW).
    pub l2_mw: f64,
    /// LIF array dynamic power (mW).
    pub lif_mw: f64,
    /// Buffer power at the 240 KB baseline capacity (mW).
    pub buffer_mw: f64,
    /// Fraction of dynamic power drawn while idle (leakage + clock).
    pub idle_fraction: f64,
    /// DRAM model.
    pub dram: DramModel,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            preprocessor_mw: 22.5,
            l1_mw: 68.2,
            l2_mw: 25.6,
            lif_mw: 9.4,
            buffer_mw: 220.8,
            idle_fraction: 0.1,
            dram: DramModel::default(),
        }
    }
}

impl EnergyModel {
    /// Buffer power (mW) at `buffer_bytes` capacity: access energy scales
    /// like √size, leakage like size; Table 3's 220.8 mW anchors 240 KB.
    pub fn buffer_power_mw(&self, buffer_bytes: usize) -> f64 {
        let s = buffer_bytes as f64 / BASELINE_BUFFER_BYTES;
        self.buffer_mw * (0.55 * s.sqrt() + 0.45 * s)
    }

    /// Area breakdown for a configuration (buffer area scales linearly
    /// with capacity from Table 3's 0.452 mm² at 240 KB).
    pub fn area(&self, config: &PhiConfig) -> AreaBreakdown {
        let s = config.total_buffer_bytes() as f64 / BASELINE_BUFFER_BYTES;
        AreaBreakdown { preprocessor: 0.099, l1: 0.074, l2: 0.027, lif: 0.011, buffer: 0.452 * s }
    }

    /// Energy for one simulated region.
    pub fn energy(
        &self,
        busy: &BusyCycles,
        dram_bytes: f64,
        config: &PhiConfig,
    ) -> EnergyBreakdown {
        let t = config.cycle_time();
        let component = |mw: f64, busy_cycles: f64| -> f64 {
            let busy_j = mw * 1e-3 * busy_cycles * t;
            let idle_cycles = (busy.elapsed - busy_cycles).max(0.0);
            busy_j + self.idle_fraction * mw * 1e-3 * idle_cycles * t
        };
        let core_j = component(self.preprocessor_mw, busy.preprocessor)
            + component(self.l1_mw, busy.l1)
            + component(self.l2_mw, busy.l2)
            + component(self.lif_mw, busy.lif);
        let buffer_mw = self.buffer_power_mw(config.total_buffer_bytes());
        // The buffer serves whichever processor is active; it is busy for
        // the full elapsed window.
        let buffer_j = buffer_mw * 1e-3 * busy.elapsed * t;
        let seconds = busy.elapsed * t;
        let dram_j = self.dram.access_energy_j(dram_bytes) + self.dram.background_energy_j(seconds);
        EnergyBreakdown { core_j, buffer_j, dram_j }
    }

    /// Energy of one accumulation in the L2 adder tree, in joules — used by
    /// the §6.1 preprocessing cost/benefit analysis.
    pub fn energy_per_accumulation_j(&self, config: &PhiConfig) -> f64 {
        // The L2 tree performs channels × n SIMD additions per cycle.
        let adds_per_cycle = (config.channels * config.tile_n) as f64;
        self.l2_mw * 1e-3 / (adds_per_cycle * config.frequency_hz)
    }

    /// Energy of one pattern comparison in the matcher, in joules.
    pub fn energy_per_comparison_j(&self, config: &PhiConfig) -> f64 {
        // Each matcher lane holds q units, each doing one k-bit XOR +
        // popcount per cycle; Table 3's preprocessor power covers all lanes
        // plus the compressor/packer (we attribute 60% to matching).
        let comparisons_per_cycle = (config.patterns_per_partition * config.matcher_lanes) as f64;
        0.6 * self.preprocessor_mw * 1e-3 / (comparisons_per_cycle * config.frequency_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_total_power_is_346mw() {
        let m = EnergyModel::default();
        let total = m.preprocessor_mw + m.l1_mw + m.l2_mw + m.lif_mw + m.buffer_mw;
        assert!((total - 346.5).abs() < 0.2);
    }

    #[test]
    fn table3_total_area_is_662um() {
        let area = EnergyModel::default().area(&PhiConfig::default());
        // Table 3 reports 0.662 after rounding; the components sum to 0.663.
        assert!((area.total() - 0.662).abs() < 2e-3);
    }

    #[test]
    fn buffer_power_anchors_at_baseline() {
        let m = EnergyModel::default();
        assert!((m.buffer_power_mw(240 << 10) - 220.8).abs() < 1e-9);
        assert!(m.buffer_power_mw(720 << 10) > m.buffer_power_mw(240 << 10));
        assert!(m.buffer_power_mw(120 << 10) < m.buffer_power_mw(240 << 10));
    }

    #[test]
    fn energy_grows_with_busy_cycles() {
        let m = EnergyModel::default();
        let config = PhiConfig::default();
        let light =
            BusyCycles { preprocessor: 10.0, l1: 10.0, l2: 10.0, lif: 10.0, elapsed: 100.0 };
        let heavy =
            BusyCycles { preprocessor: 90.0, l1: 90.0, l2: 90.0, lif: 90.0, elapsed: 100.0 };
        let e_light = m.energy(&light, 0.0, &config);
        let e_heavy = m.energy(&heavy, 0.0, &config);
        assert!(e_heavy.core_j > e_light.core_j);
        // Buffer energy depends on elapsed time only.
        assert!((e_heavy.buffer_j - e_light.buffer_j).abs() < 1e-15);
    }

    #[test]
    fn dram_energy_counts_bytes_and_background() {
        let m = EnergyModel::default();
        let config = PhiConfig::default();
        let busy = BusyCycles { elapsed: 1e6, ..Default::default() };
        let none = m.energy(&busy, 0.0, &config);
        let some = m.energy(&busy, 1e6, &config);
        assert!(some.dram_j > none.dram_j);
        assert!(none.dram_j > 0.0, "background power should be charged");
    }

    #[test]
    fn per_event_energies_are_small_and_positive() {
        let m = EnergyModel::default();
        let config = PhiConfig::default();
        let acc = m.energy_per_accumulation_j(&config);
        let cmp = m.energy_per_comparison_j(&config);
        assert!(acc > 0.0 && acc < 1e-12, "accumulation {acc} J");
        assert!(cmp > 0.0 && cmp < 1e-12, "comparison {cmp} J");
    }

    #[test]
    fn breakdown_accumulates() {
        let mut a = EnergyBreakdown { core_j: 1.0, buffer_j: 2.0, dram_j: 3.0 };
        a.add(&EnergyBreakdown { core_j: 0.5, buffer_j: 0.5, dram_j: 0.5 });
        assert!((a.total_j() - 7.5).abs() < 1e-12);
    }
}
