//! The Level-2 compressor and packer (§4.2.2, Fig. 4b/c).
//!
//! The compressor drops all-zero Level-2 rows and extracts column indices;
//! the packer consolidates the surviving rows into fixed 8-unit *packs*.
//! Each packed row consumes `nnz + 1` units — its correction elements plus
//! one partial-sum unit — and may only join a window whose resident rows use
//! different partial-sum banks (`row mod banks`), which is what guarantees
//! conflict-free psum access in the L2 processor.
//!
//! This module builds real packs (the L2 processor model consumes their
//! count and occupancy), maintaining the paper's multi-window scheduling:
//! a row goes to the first window with space and no bank conflict; if none
//! qualifies, the fullest window is flushed.

/// One unit inside a pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackUnit {
    /// A Level-2 correction: accumulate (or subtract) one weight row.
    Nonzero {
        /// Row id within the m-tile.
        row: u32,
        /// Column index within the partition (0..k).
        col: u8,
        /// Whether the value is −1.
        negative: bool,
    },
    /// A partial-sum unit: accumulate the row's running partial sum.
    PartialSum {
        /// Row id within the m-tile.
        row: u32,
    },
}

impl PackUnit {
    /// The row this unit belongs to.
    pub fn row(&self) -> u32 {
        match *self {
            PackUnit::Nonzero { row, .. } | PackUnit::PartialSum { row } => row,
        }
    }
}

/// A fixed-capacity pack of units, plus scheduling metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Pack {
    /// Units in dispatch order (grouped by row).
    pub units: Vec<PackUnit>,
    /// Distinct rows packed (each row contributes a contiguous unit run).
    pub rows: u32,
}

impl Pack {
    /// Occupied units.
    pub fn occupancy(&self) -> usize {
        self.units.len()
    }
}

/// Packer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackerConfig {
    /// Units per pack (8 in the paper).
    pub pack_units: usize,
    /// Concurrent open windows (incomplete packs).
    pub windows: usize,
    /// Partial-sum banks; two rows with equal `row mod banks` conflict.
    pub psum_banks: usize,
}

impl Default for PackerConfig {
    fn default() -> Self {
        PackerConfig { pack_units: 8, windows: 4, psum_banks: 8 }
    }
}

/// Result of packing one (m-tile, partition) stream.
#[derive(Debug, Clone, PartialEq)]
pub struct PackerOutput {
    /// The completed packs.
    pub packs: Vec<Pack>,
    /// Rows that had to be split across packs because `nnz + 1` exceeded a
    /// pack (the paper's sparsity makes this "not exist"; we handle and
    /// count it for robustness).
    pub oversize_rows: u64,
    /// Window flushes forced by conflicts or lack of space.
    pub forced_flushes: u64,
}

impl PackerOutput {
    /// Mean pack occupancy in [0, 1] — the utilization Fig. 5's design is
    /// built to maximize.
    pub fn mean_occupancy(&self, pack_units: usize) -> f64 {
        if self.packs.is_empty() {
            return 0.0;
        }
        let occupied: usize = self.packs.iter().map(Pack::occupancy).sum();
        occupied as f64 / (self.packs.len() * pack_units) as f64
    }
}

#[derive(Debug, Default)]
struct Window {
    units: Vec<PackUnit>,
    rows: u32,
    banks_used: u64, // bitmask over psum banks
}

/// Packs a stream of `(row, level-2 corrections)` for one partition.
///
/// `rows` yields `(row_id, &[(col_in_partition, negative)])`; all-zero rows
/// must already be filtered out (the compressor's job —
/// [`pack_rows`] debug-asserts it).
pub fn pack_rows<'a>(
    rows: impl Iterator<Item = (u32, &'a [(u8, bool)])>,
    config: &PackerConfig,
) -> PackerOutput {
    let mut windows: Vec<Window> = (0..config.windows).map(|_| Window::default()).collect();
    let mut out = PackerOutput { packs: Vec::new(), oversize_rows: 0, forced_flushes: 0 };

    for (row, entries) in rows {
        debug_assert!(!entries.is_empty(), "compressor must filter empty rows");
        let mut remaining = entries;
        // Oversize rows are split into pack-sized chunks; every chunk needs
        // its own partial-sum unit to chain the accumulation.
        let chunk_capacity = config.pack_units - 1;
        if remaining.len() > chunk_capacity {
            out.oversize_rows += 1;
        }
        while !remaining.is_empty() {
            let take = remaining.len().min(chunk_capacity);
            let (chunk, rest) = remaining.split_at(take);
            remaining = rest;
            place_chunk(row, chunk, config, &mut windows, &mut out);
        }
    }
    // Flush everything left.
    for w in &mut windows {
        if !w.units.is_empty() {
            out.packs.push(Pack { units: std::mem::take(&mut w.units), rows: w.rows });
        }
    }
    out
}

fn place_chunk(
    row: u32,
    chunk: &[(u8, bool)],
    config: &PackerConfig,
    windows: &mut [Window],
    out: &mut PackerOutput,
) {
    let needed = chunk.len() + 1;
    let bank = (row as usize % config.psum_banks) as u64;
    loop {
        // Step 5 of Fig. 4: find a window with space and no bank conflict.
        let slot = windows.iter().position(|w| {
            w.units.len() + needed <= config.pack_units && w.banks_used & (1 << bank) == 0
        });
        match slot {
            Some(i) => {
                let w = &mut windows[i];
                w.units.push(PackUnit::PartialSum { row });
                for &(col, negative) in chunk {
                    w.units.push(PackUnit::Nonzero { row, col, negative });
                }
                w.rows += 1;
                w.banks_used |= 1 << bank;
                return;
            }
            None => {
                // Flush the fullest window and retry.
                let fullest = windows
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, w)| w.units.len())
                    .map(|(i, _)| i)
                    .expect("at least one window");
                let w = &mut windows[fullest];
                out.packs.push(Pack { units: std::mem::take(&mut w.units), rows: w.rows });
                w.rows = 0;
                w.banks_used = 0;
                out.forced_flushes += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<(u8, bool)> {
        (0..n).map(|i| (i as u8, i % 2 == 1)).collect()
    }

    #[test]
    fn single_row_forms_single_pack() {
        let e = entries(3);
        let rows = vec![(0u32, e.as_slice())];
        let out = pack_rows(rows.into_iter(), &PackerConfig::default());
        assert_eq!(out.packs.len(), 1);
        assert_eq!(out.packs[0].occupancy(), 4); // 3 nonzeros + 1 psum
        assert_eq!(out.packs[0].rows, 1);
        assert_eq!(out.oversize_rows, 0);
    }

    #[test]
    fn rows_share_packs_up_to_capacity() {
        // Three rows of 2 entries each: 3 × (2+1) = 9 units > 8, so two
        // packs.
        let e = entries(2);
        let rows: Vec<(u32, &[(u8, bool)])> = (0..3).map(|r| (r as u32, e.as_slice())).collect();
        let out = pack_rows(rows.into_iter(), &PackerConfig { windows: 1, ..Default::default() });
        assert_eq!(out.packs.len(), 2);
        let total_units: usize = out.packs.iter().map(Pack::occupancy).sum();
        assert_eq!(total_units, 9);
    }

    #[test]
    fn bank_conflicts_keep_rows_apart() {
        // Rows 0 and 8 share psum bank 0 (mod 8): they must not share a
        // pack even though capacity allows it.
        let e = entries(1);
        let rows: Vec<(u32, &[(u8, bool)])> = vec![(0, e.as_slice()), (8, e.as_slice())];
        let out = pack_rows(rows.into_iter(), &PackerConfig { windows: 1, ..Default::default() });
        assert_eq!(out.packs.len(), 2, "conflicting rows must split packs");
        for pack in &out.packs {
            let mut banks = std::collections::HashSet::new();
            for u in &pack.units {
                if let PackUnit::PartialSum { row } = u {
                    assert!(banks.insert(row % 8), "bank conflict inside a pack");
                }
            }
        }
    }

    #[test]
    fn multiple_windows_absorb_conflicts_without_flush() {
        // With ≥2 windows, the bank-conflicting row lands in window 1
        // instead of forcing a flush.
        let e = entries(1);
        let rows: Vec<(u32, &[(u8, bool)])> =
            vec![(0, e.as_slice()), (8, e.as_slice()), (1, e.as_slice())];
        let out = pack_rows(rows.clone().into_iter(), &PackerConfig::default());
        assert_eq!(out.forced_flushes, 0);
        let single =
            pack_rows(rows.into_iter(), &PackerConfig { windows: 1, ..Default::default() });
        assert!(single.forced_flushes > 0);
    }

    #[test]
    fn oversize_row_is_split_and_counted() {
        let e = entries(10); // 10 + 1 units > 8
        let rows = vec![(0u32, e.as_slice())];
        let out = pack_rows(rows.into_iter(), &PackerConfig::default());
        assert_eq!(out.oversize_rows, 1);
        let nonzeros: usize = out
            .packs
            .iter()
            .flat_map(|p| &p.units)
            .filter(|u| matches!(u, PackUnit::Nonzero { .. }))
            .count();
        assert_eq!(nonzeros, 10, "all corrections must survive splitting");
        // Two chunks => two partial-sum units to chain them.
        let psums: usize = out
            .packs
            .iter()
            .flat_map(|p| &p.units)
            .filter(|u| matches!(u, PackUnit::PartialSum { .. }))
            .count();
        assert_eq!(psums, 2);
    }

    #[test]
    fn occupancy_reflects_packing_quality() {
        let e = entries(7); // 7 + 1 = exactly one full pack
        let rows = vec![(0u32, e.as_slice())];
        let out = pack_rows(rows.into_iter(), &PackerConfig::default());
        assert!((out.mean_occupancy(8) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stream_produces_no_packs() {
        let out = pack_rows(std::iter::empty(), &PackerConfig::default());
        assert!(out.packs.is_empty());
        assert_eq!(out.mean_occupancy(8), 0.0);
    }
}
