//! Simulation result types.

use crate::energy::EnergyBreakdown;
use crate::traffic::TrafficReport;
use phi_core::SparsityStats;
use std::fmt;

/// Per-component cycle counts for one layer (already scaled to full layer
/// size). `elapsed` is the wall-clock bound: the slowest of the overlapped
/// compute, preprocessing, DRAM, and neuron-array pipelines.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleBreakdown {
    /// Preprocessor (matcher/compressor/packer) cycles.
    pub preprocessor: f64,
    /// L1 processor busy cycles.
    pub l1: f64,
    /// L2 processor busy cycles.
    pub l2: f64,
    /// Per-output-tile synchronized compute cycles (`Σ max(L1, L2)`).
    pub compute: f64,
    /// Neuron-array cycles.
    pub lif: f64,
    /// DRAM transfer cycles at full bandwidth.
    pub dram: f64,
}

/// Simulation report for one layer.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Wall-clock cycles (full layer).
    pub cycles: f64,
    /// Component cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// DRAM traffic categories.
    pub traffic: TrafficReport,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Paper-metric operations (accumulations of '1' bits × N).
    pub bit_ops: f64,
    /// Phi sparsity statistics of the layer's activations.
    pub stats: SparsityStats,
    /// Mean Level-2 pack occupancy in [0, 1].
    pub pack_occupancy: f64,
    /// Rows whose corrections exceeded one pack (expected ≈ 0).
    pub oversize_rows: u64,
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} cycles ({:.0} compute / {:.0} dram), {:.3} mJ",
            self.name,
            self.cycles,
            self.breakdown.compute,
            self.breakdown.dram,
            self.energy.total_mj()
        )
    }
}

/// Aggregated report over a model's layers.
#[derive(Debug, Clone, Default)]
pub struct ModelReport {
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl ModelReport {
    /// Builds a report from layer results.
    pub fn from_layers(layers: Vec<LayerReport>) -> Self {
        ModelReport { layers }
    }

    /// Total wall-clock cycles.
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total paper-metric operations.
    pub fn total_ops(&self) -> f64 {
        self.layers.iter().map(|l| l.bit_ops).sum()
    }

    /// Total energy breakdown.
    pub fn total_energy(&self) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        for l in &self.layers {
            e.add(&l.energy);
        }
        e
    }

    /// Total DRAM traffic.
    pub fn total_traffic(&self) -> TrafficReport {
        let mut t = TrafficReport::default();
        for l in &self.layers {
            t.add(&l.traffic);
        }
        t
    }

    /// Runtime in seconds at `frequency_hz`.
    pub fn runtime_s(&self, frequency_hz: f64) -> f64 {
        self.total_cycles() / frequency_hz
    }

    /// Throughput in GOP/s (Table 2's metric).
    pub fn throughput_gops(&self, frequency_hz: f64) -> f64 {
        let t = self.runtime_s(frequency_hz);
        if t == 0.0 {
            0.0
        } else {
            self.total_ops() / t / 1e9
        }
    }

    /// Energy efficiency in GOP/J (Table 2's metric).
    pub fn gops_per_joule(&self) -> f64 {
        let e = self.total_energy().total_j();
        if e == 0.0 {
            0.0
        } else {
            self.total_ops() / e / 1e9
        }
    }

    /// Merged sparsity statistics across layers.
    pub fn total_stats(&self) -> SparsityStats {
        let stats: Vec<SparsityStats> = self.layers.iter().map(|l| l.stats).collect();
        SparsityStats::merge_all(stats.iter())
    }
}

impl fmt::Display for ModelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers, {:.3e} cycles, {:.3} mJ",
            self.layers.len(),
            self.total_cycles(),
            self.total_energy().total_mj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: f64, ops: f64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            cycles,
            breakdown: CycleBreakdown::default(),
            traffic: TrafficReport::default(),
            energy: EnergyBreakdown { core_j: 1e-6, buffer_j: 1e-6, dram_j: 1e-6 },
            bit_ops: ops,
            stats: phi_core::SparsityStats {
                rows: 1,
                cols: 1,
                k: 16,
                partitions: 1,
                bit_nnz: 1,
                assigned_tiles: 0,
                l1_ones: 0,
                l2_pos: 1,
                l2_neg: 0,
            },
            pack_occupancy: 0.5,
            oversize_rows: 0,
        }
    }

    #[test]
    fn totals_accumulate() {
        let r = ModelReport::from_layers(vec![layer(100.0, 1e6), layer(200.0, 2e6)]);
        assert_eq!(r.total_cycles(), 300.0);
        assert_eq!(r.total_ops(), 3e6);
        assert!((r.total_energy().total_j() - 6e-6).abs() < 1e-12);
    }

    #[test]
    fn throughput_formula() {
        let r = ModelReport::from_layers(vec![layer(500e6, 121.4e9)]);
        // 500e6 cycles at 500 MHz = 1 s; 121.4e9 ops → 121.4 GOP/s.
        assert!((r.throughput_gops(500e6) - 121.4).abs() < 1e-6);
    }

    #[test]
    fn empty_report_is_zero() {
        let r = ModelReport::default();
        assert_eq!(r.total_cycles(), 0.0);
        assert_eq!(r.throughput_gops(500e6), 0.0);
        assert_eq!(r.gops_per_joule(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = ModelReport::from_layers(vec![layer(1.0, 1.0)]);
        assert!(r.to_string().contains("1 layers"));
    }
}
