//! The tiling schedule (§4.1): `(M, N, K)` tiled at `(m, n, k)` with
//! K-first traversal.
//!
//! K-first ordering reduces partial sums early, which is what lets the
//! output tile flow straight into the neuron array and the preprocessor of
//! the next layer — the three-way overlap the simulator's timing model
//! assumes.

/// The tile grid of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSchedule {
    /// Activation rows (M, after stacking timesteps).
    pub rows: usize,
    /// Reduction dimension (K).
    pub k_cols: usize,
    /// Output columns (N).
    pub n_cols: usize,
    /// Row-tile size `m`.
    pub tile_m: usize,
    /// Partition width `k`.
    pub tile_k: usize,
    /// Column-tile size `n`.
    pub tile_n: usize,
}

impl TileSchedule {
    /// Creates the schedule.
    ///
    /// # Panics
    ///
    /// Panics if any tile size is zero.
    pub fn new(
        rows: usize,
        k_cols: usize,
        n_cols: usize,
        tile_m: usize,
        tile_k: usize,
        tile_n: usize,
    ) -> Self {
        assert!(tile_m > 0 && tile_k > 0 && tile_n > 0, "tile sizes must be nonzero");
        TileSchedule { rows, k_cols, n_cols, tile_m, tile_k, tile_n }
    }

    /// Number of row tiles.
    pub fn m_tiles(&self) -> usize {
        self.rows.div_ceil(self.tile_m)
    }

    /// Number of K partitions.
    pub fn k_parts(&self) -> usize {
        self.k_cols.div_ceil(self.tile_k)
    }

    /// Number of column tiles.
    pub fn n_tiles(&self) -> usize {
        self.n_cols.div_ceil(self.tile_n)
    }

    /// Total output tiles (`m_tiles × n_tiles`).
    pub fn output_tiles(&self) -> usize {
        self.m_tiles() * self.n_tiles()
    }

    /// Row range of row-tile `mt`, clamped to the matrix.
    pub fn m_range(&self, mt: usize) -> (usize, usize) {
        let lo = mt * self.tile_m;
        (lo, (lo + self.tile_m).min(self.rows))
    }

    /// Iterates `(m_tile, n_tile, k_part)` in the K-first execution order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (m, n, k) = (self.m_tiles(), self.n_tiles(), self.k_parts());
        (0..m).flat_map(move |mi| (0..n).flat_map(move |ni| (0..k).map(move |ki| (mi, ni, ki))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_counts_round_up() {
        let t = TileSchedule::new(300, 50, 70, 256, 16, 32);
        assert_eq!(t.m_tiles(), 2);
        assert_eq!(t.k_parts(), 4);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.output_tiles(), 6);
    }

    #[test]
    fn m_range_clamps_last_tile() {
        let t = TileSchedule::new(300, 50, 70, 256, 16, 32);
        assert_eq!(t.m_range(0), (0, 256));
        assert_eq!(t.m_range(1), (256, 300));
    }

    #[test]
    fn iteration_is_k_innermost() {
        let t = TileSchedule::new(10, 32, 32, 256, 16, 32);
        let order: Vec<_> = t.iter().collect();
        assert_eq!(order, vec![(0, 0, 0), (0, 0, 1)]);
        let t = TileSchedule::new(10, 32, 64, 256, 16, 32);
        let order: Vec<_> = t.iter().collect();
        // K varies fastest, then N, then M.
        assert_eq!(order, vec![(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)]);
    }

    #[test]
    fn covers_every_tile_exactly_once() {
        let t = TileSchedule::new(500, 100, 100, 256, 16, 32);
        let count = t.iter().count();
        assert_eq!(count, t.m_tiles() * t.n_tiles() * t.k_parts());
    }
}
