//! Analysis tooling for the Phi reproduction.
//!
//! * [`tsne`] — an exact t-SNE implementation (perplexity-calibrated
//!   Gaussian affinities, Student-t low-dimensional kernel, momentum
//!   gradient descent with early exaggeration), used to regenerate the
//!   paper's Figs. 1 and 9 embeddings;
//! * [`metrics`] — cluster-quality measures (silhouette, Davies–Bouldin,
//!   neighborhood compactness) that turn the paper's *visual* claims
//!   ("SNN activations form distinct clusters") into numbers;
//! * [`report`] — plain-text table and CSV emission for every experiment
//!   binary.
//!
//! # Example
//!
//! ```
//! use phi_analysis::tsne::{Tsne, TsneConfig};
//! use rand::SeedableRng;
//!
//! // Two well-separated blobs in 8-D.
//! let mut points = Vec::new();
//! for i in 0..40 {
//!     let base = if i % 2 == 0 { 0.0 } else { 8.0 };
//!     points.push((0..8).map(|d| base + ((i * 7 + d) % 3) as f32 * 0.1).collect());
//! }
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let config = TsneConfig { iterations: 150, perplexity: 10.0, ..Default::default() };
//! let embedding = Tsne::new(config).embed(&points, &mut rng);
//! assert_eq!(embedding.len(), 40);
//! ```

pub mod metrics;
pub mod report;
pub mod scatter;
pub mod tsne;

pub use metrics::{davies_bouldin, neighborhood_compactness, silhouette};
pub use report::Table;
pub use scatter::scatter;
pub use tsne::{Tsne, TsneConfig};
