//! Terminal scatter plots for 2-D embeddings.
//!
//! The paper's Figs. 1 and 9 are t-SNE scatter plots; this renderer puts a
//! usable version of them straight in the terminal (one glyph per group) so
//! the `fig9` binary can show cluster structure without any plotting
//! dependency. CSV output remains available for external tools.

/// Renders labelled 2-D points into a `width × height` character grid.
///
/// Each group is drawn with its glyph (`groups[label]`); collisions show
/// the later group. Returns the rendered multi-line string, including a
/// simple frame.
///
/// # Panics
///
/// Panics if `points` and `labels` lengths differ, a label indexes past
/// `glyphs`, or the grid is degenerate (`width/height < 2`).
pub fn scatter(
    points: &[[f64; 2]],
    labels: &[usize],
    glyphs: &[char],
    width: usize,
    height: usize,
) -> String {
    assert_eq!(points.len(), labels.len(), "one label per point");
    assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
    for &l in labels {
        assert!(l < glyphs.len(), "label {l} has no glyph");
    }

    let mut grid = vec![vec![' '; width]; height];
    if !points.is_empty() {
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in points {
            min_x = min_x.min(p[0]);
            max_x = max_x.max(p[0]);
            min_y = min_y.min(p[1]);
            max_y = max_y.max(p[1]);
        }
        let span_x = (max_x - min_x).max(1e-12);
        let span_y = (max_y - min_y).max(1e-12);
        for (p, &label) in points.iter().zip(labels) {
            let x = ((p[0] - min_x) / span_x * (width - 1) as f64).round() as usize;
            // Flip y so larger values render higher.
            let y = ((max_y - p[1]) / span_y * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = glyphs[label];
        }
    }

    let mut out = String::with_capacity((width + 3) * (height + 2));
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push_str("+\n");
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push_str("|\n");
    }
    out.push('+');
    out.extend(std::iter::repeat_n('-', width));
    out.push('+');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_at_extremes() {
        let points = vec![[0.0, 0.0], [10.0, 10.0]];
        let labels = vec![0, 1];
        let s = scatter(&points, &labels, &['a', 'b'], 10, 5);
        let lines: Vec<&str> = s.lines().collect();
        // b is top-right, a bottom-left.
        assert!(lines[1].ends_with("b|"));
        assert!(lines[5].starts_with("|a"));
    }

    #[test]
    fn empty_input_renders_empty_frame() {
        let s = scatter(&[], &[], &['x'], 4, 3);
        assert!(s.starts_with("+----+"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn degenerate_spread_does_not_panic() {
        // All points identical: span clamps avoid division by zero.
        let points = vec![[1.0, 1.0]; 5];
        let labels = vec![0; 5];
        let s = scatter(&points, &labels, &['*'], 6, 4);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "label 1 has no glyph")]
    fn rejects_unknown_labels() {
        scatter(&[[0.0, 0.0]], &[1], &['x'], 4, 4);
    }

    #[test]
    fn separated_groups_render_apart() {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            points.push([i as f64 * 0.01, 0.0]);
            labels.push(0);
            points.push([100.0 + i as f64 * 0.01, 50.0]);
            labels.push(1);
        }
        let s = scatter(&points, &labels, &['o', 'x'], 40, 10);
        // Group o occupies lower-left, x upper-right; no interleaving on
        // the top row.
        let top = s.lines().nth(1).unwrap();
        assert!(top.contains('x'));
        assert!(!top.contains('o'));
    }
}
