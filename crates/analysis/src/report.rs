//! Plain-text table and CSV emission.
//!
//! Every experiment binary prints its table/figure through this type, so
//! the regenerated outputs line up with the paper's rows and can also be
//! diffed as CSV.

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use phi_analysis::Table;
///
/// let mut t = Table::new("Demo", &["model", "speedup"]);
/// t.row(&["VGG16", "3.45"]);
/// let text = t.to_string();
/// assert!(text.contains("VGG16"));
/// assert!(text.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count must match headers");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count must match headers");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation or writing.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = File::create(path)?;
        writeln!(f, "{}", escape_csv_row(&self.headers))?;
        for row in &self.rows {
            writeln!(f, "{}", escape_csv_row(row))?;
        }
        Ok(())
    }
}

fn escape_csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let text = t.to_string();
        assert!(text.contains("== T =="));
        assert!(text.contains("xxxx"));
        // Header of column 0 is right-aligned to the widest cell.
        assert!(text.lines().nth(1).unwrap().starts_with("   a"));
    }

    #[test]
    #[should_panic(expected = "cell count must match headers")]
    fn rejects_wrong_cell_count() {
        Table::new("T", &["a"]).row(&["1", "2"]);
    }

    #[test]
    fn csv_roundtrip_escapes_commas() {
        let dir = std::env::temp_dir().join("phi_table_test.csv");
        let mut t = Table::new("T", &["name", "value"]);
        t.row(&["a,b", "1"]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        assert!(content.contains("\"a,b\""));
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn len_counts_rows() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row(&["1"]).row(&["2"]);
        assert_eq!(t.len(), 2);
    }
}
