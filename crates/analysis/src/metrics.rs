//! Cluster-quality metrics.
//!
//! The paper's Figs. 1 and 9 argue visually that SNN activations cluster
//! and that PAFT makes the clusters "fewer but denser". These metrics make
//! those claims measurable: silhouette (higher = better separated),
//! Davies–Bouldin (lower = denser/better separated), and a label-free
//! neighborhood compactness score.

/// Euclidean distance between two points of equal dimensionality.
fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Mean silhouette coefficient over all points.
///
/// Returns `None` when fewer than two clusters are present or a cluster is
/// a singleton-only configuration that makes the score undefined.
///
/// # Panics
///
/// Panics if `points` and `labels` lengths differ.
pub fn silhouette(points: &[Vec<f64>], labels: &[usize]) -> Option<f64> {
    assert_eq!(points.len(), labels.len(), "one label per point");
    let n = points.len();
    let clusters: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    if clusters.len() < 2 || n < 3 {
        return None;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = labels[i];
        let own_size = labels.iter().filter(|&&l| l == own).count();
        if own_size <= 1 {
            continue; // silhouette of a singleton is defined as 0; skip
        }
        let mut a = 0.0;
        let mut b = f64::INFINITY;
        for &c in &clusters {
            let members: Vec<usize> = (0..n).filter(|&j| labels[j] == c && j != i).collect();
            if members.is_empty() {
                continue;
            }
            let mean: f64 = members.iter().map(|&j| dist(&points[i], &points[j])).sum::<f64>()
                / members.len() as f64;
            if c == own {
                a = mean;
            } else {
                b = b.min(mean);
            }
        }
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
        counted += 1;
    }
    if counted == 0 {
        None
    } else {
        Some(total / counted as f64)
    }
}

/// Davies–Bouldin index: mean over clusters of the worst
/// `(σᵢ + σⱼ) / d(cᵢ, cⱼ)` ratio. Lower is better.
///
/// Returns `None` when fewer than two non-empty clusters are present.
///
/// # Panics
///
/// Panics if `points` and `labels` lengths differ.
pub fn davies_bouldin(points: &[Vec<f64>], labels: &[usize]) -> Option<f64> {
    assert_eq!(points.len(), labels.len(), "one label per point");
    let clusters: Vec<usize> = {
        let s: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
        s.into_iter().collect()
    };
    if clusters.len() < 2 || points.is_empty() {
        return None;
    }
    let dim = points[0].len();
    let mut centroids = Vec::new();
    let mut scatters = Vec::new();
    for &c in &clusters {
        let members: Vec<&Vec<f64>> =
            points.iter().zip(labels).filter(|(_, &l)| l == c).map(|(p, _)| p).collect();
        let mut centroid = vec![0.0; dim];
        for m in &members {
            for (cd, &md) in centroid.iter_mut().zip(m.iter()) {
                *cd += md;
            }
        }
        for cd in &mut centroid {
            *cd /= members.len() as f64;
        }
        let scatter: f64 =
            members.iter().map(|m| dist(m, &centroid)).sum::<f64>() / members.len() as f64;
        centroids.push(centroid);
        scatters.push(scatter);
    }
    let k = clusters.len();
    let mut total = 0.0;
    for i in 0..k {
        let mut worst = 0.0f64;
        for j in 0..k {
            if i == j {
                continue;
            }
            let d = dist(&centroids[i], &centroids[j]);
            if d > 0.0 {
                worst = worst.max((scatters[i] + scatters[j]) / d);
            }
        }
        total += worst;
    }
    Some(total / k as f64)
}

/// Label-free clusteredness: the ratio of the mean distance to the
/// `k`-nearest neighbor over the mean pairwise distance. Clustered data has
/// close neighbors relative to the global scale, so *lower is more
/// clustered*; i.i.d. data approaches 1 from below.
///
/// Returns `None` if there are fewer than `k + 2` points.
pub fn neighborhood_compactness(points: &[Vec<f64>], k: usize) -> Option<f64> {
    let n = points.len();
    if n < k + 2 || k == 0 {
        return None;
    }
    let mut knn_total = 0.0;
    let mut all_total = 0.0;
    let mut all_count = 0usize;
    for i in 0..n {
        let mut dists: Vec<f64> =
            (0..n).filter(|&j| j != i).map(|j| dist(&points[i], &points[j])).collect();
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        knn_total += dists[k - 1];
        all_total += dists.iter().sum::<f64>();
        all_count += dists.len();
    }
    let mean_knn = knn_total / n as f64;
    let mean_all = all_total / all_count as f64;
    if mean_all == 0.0 {
        Some(0.0)
    } else {
        Some(mean_knn / mean_all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn two_blobs(sep: f64, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for b in 0..2 {
            for _ in 0..n {
                points.push(vec![
                    b as f64 * sep + rng.gen::<f64>(),
                    b as f64 * sep + rng.gen::<f64>(),
                ]);
                labels.push(b);
            }
        }
        (points, labels)
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (p, l) = two_blobs(10.0, 20);
        let s = silhouette(&p, &l).unwrap();
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn silhouette_low_for_overlapping_blobs() {
        let (p, l) = two_blobs(0.1, 20);
        let s = silhouette(&p, &l).unwrap();
        assert!(s < 0.3, "silhouette {s}");
    }

    #[test]
    fn silhouette_undefined_for_single_cluster() {
        let (p, _) = two_blobs(1.0, 10);
        let labels = vec![0usize; p.len()];
        assert_eq!(silhouette(&p, &labels), None);
    }

    #[test]
    fn davies_bouldin_orders_separation() {
        let (p1, l1) = two_blobs(10.0, 20);
        let (p2, l2) = two_blobs(1.0, 20);
        let tight = davies_bouldin(&p1, &l1).unwrap();
        let loose = davies_bouldin(&p2, &l2).unwrap();
        assert!(tight < loose, "tight {tight} < loose {loose}");
    }

    #[test]
    fn compactness_discriminates_clustered_from_uniform() {
        let (clustered, _) = two_blobs(20.0, 30);
        let mut rng = StdRng::seed_from_u64(12);
        let uniform: Vec<Vec<f64>> =
            (0..60).map(|_| vec![rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0]).collect();
        let c = neighborhood_compactness(&clustered, 5).unwrap();
        let u = neighborhood_compactness(&uniform, 5).unwrap();
        assert!(c < u, "clustered {c} should be more compact than uniform {u}");
    }

    #[test]
    fn compactness_requires_enough_points() {
        let points = vec![vec![0.0], vec![1.0]];
        assert_eq!(neighborhood_compactness(&points, 5), None);
    }
}
