//! Exact t-SNE (van der Maaten & Hinton, 2008) — the dimensionality
//! reduction the paper uses to reveal pattern structure in SNN activations
//! (Figs. 1 and 9).
//!
//! This is the O(n²) reference algorithm: per-point perplexity calibration
//! by binary search over the Gaussian bandwidth, symmetrized affinities,
//! Student-t similarities in the embedding, gradient descent with momentum
//! and early exaggeration. Adequate for the ≤ a few thousand activation
//! rows the figures use.

use rand::Rng;

/// t-SNE hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count).
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// Momentum (switches from 0.5 to this value after the early phase).
    pub final_momentum: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 150.0,
            exaggeration: 12.0,
            final_momentum: 0.8,
        }
    }
}

/// The t-SNE embedder.
#[derive(Debug, Clone)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Creates an embedder.
    ///
    /// # Panics
    ///
    /// Panics if perplexity or iterations are not positive.
    pub fn new(config: TsneConfig) -> Self {
        assert!(config.perplexity > 0.0, "perplexity must be positive");
        assert!(config.iterations > 0, "need at least one iteration");
        Tsne { config }
    }

    /// Embeds `points` (rows of equal dimensionality) into 2-D.
    ///
    /// Returns one `[x, y]` per input row. Deterministic given the RNG
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent dimensionality.
    pub fn embed<R: Rng + ?Sized>(&self, points: &[Vec<f32>], rng: &mut R) -> Vec<[f64; 2]> {
        let n = points.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![[0.0, 0.0]];
        }
        let dim = points[0].len();
        for p in points {
            assert_eq!(p.len(), dim, "inconsistent point dimensionality");
        }

        let d2 = pairwise_sq_dists(points);
        let p = joint_probabilities(&d2, self.config.perplexity.min((n - 1) as f64 / 3.0));

        // Initialize with small Gaussian noise.
        let mut y: Vec<[f64; 2]> = (0..n)
            .map(|_| [rng.gen::<f64>() * 1e-4 - 5e-5, rng.gen::<f64>() * 1e-4 - 5e-5])
            .collect();
        let mut velocity = vec![[0.0f64; 2]; n];
        let mut gains = vec![[1.0f64; 2]; n];

        let early_iters = self.config.iterations / 4;
        let mut q_num = vec![0.0f64; n * n];

        for iter in 0..self.config.iterations {
            let exaggeration = if iter < early_iters { self.config.exaggeration } else { 1.0 };
            let momentum = if iter < early_iters { 0.5 } else { self.config.final_momentum };

            // Student-t numerators and normalizer.
            let mut q_sum = 0.0f64;
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = y[i][0] - y[j][0];
                    let dy = y[i][1] - y[j][1];
                    let num = 1.0 / (1.0 + dx * dx + dy * dy);
                    q_num[i * n + j] = num;
                    q_num[j * n + i] = num;
                    q_sum += 2.0 * num;
                }
            }
            let q_sum = q_sum.max(1e-12);

            for i in 0..n {
                let mut grad = [0.0f64; 2];
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let num = q_num[i * n + j];
                    let q = (num / q_sum).max(1e-12);
                    let mult = (exaggeration * p[i * n + j] - q) * num;
                    grad[0] += mult * (y[i][0] - y[j][0]);
                    grad[1] += mult * (y[i][1] - y[j][1]);
                }
                for d in 0..2 {
                    let g = 4.0 * grad[d];
                    // Adaptive per-dimension gains (Jacobs' delta-bar-delta).
                    gains[i][d] = if g.signum() != velocity[i][d].signum() {
                        (gains[i][d] + 0.2).min(10.0)
                    } else {
                        (gains[i][d] * 0.8).max(0.01)
                    };
                    velocity[i][d] =
                        momentum * velocity[i][d] - self.config.learning_rate * gains[i][d] * g;
                }
            }
            for i in 0..n {
                y[i][0] += velocity[i][0];
                y[i][1] += velocity[i][1];
            }
            // Center the embedding to remove drift.
            let (mx, my) = y.iter().fold((0.0, 0.0), |(a, b), p| (a + p[0], b + p[1]));
            let (mx, my) = (mx / n as f64, my / n as f64);
            for p in &mut y {
                p[0] -= mx;
                p[1] -= my;
            }
        }
        y
    }
}

fn pairwise_sq_dists(points: &[Vec<f32>]) -> Vec<f64> {
    let n = points.len();
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(&a, &b)| {
                    let diff = (a - b) as f64;
                    diff * diff
                })
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    d2
}

/// Per-row bandwidth calibration to the target perplexity, then
/// symmetrization: `P = (P|i + P|j) / 2n`.
fn joint_probabilities(d2: &[f64], perplexity: f64) -> Vec<f64> {
    let n = (d2.len() as f64).sqrt() as usize;
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f64; n * n];

    for i in 0..n {
        let row = &d2[i * n..(i + 1) * n];
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        let mut probs = vec![0.0f64; n];
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                probs[j] = if j == i { 0.0 } else { (-beta * row[j]).exp() };
                sum += probs[j];
            }
            let sum = sum.max(1e-300);
            let mut entropy = 0.0;
            for (j, pj) in probs.iter_mut().enumerate() {
                *pj /= sum;
                if j != i && *pj > 1e-12 {
                    entropy -= *pj * pj.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_infinite() { beta * 2.0 } else { (beta + beta_hi) / 2.0 };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        for j in 0..n {
            p[i * n + j] = probs[j];
        }
    }

    // Symmetrize and normalize.
    let mut joint = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(per_blob: usize, dims: usize, separation: f32) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        for blob in 0..2 {
            for _ in 0..per_blob {
                let base = blob as f32 * separation;
                points.push((0..dims).map(|_| base + rng.gen::<f32>() * 0.5).collect());
                labels.push(blob);
            }
        }
        (points, labels)
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (points, labels) = blobs(30, 10, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let config = TsneConfig { iterations: 250, perplexity: 15.0, ..Default::default() };
        let y = Tsne::new(config).embed(&points, &mut rng);
        // Mean within-blob distance must be far below between-blob distance.
        let dist =
            |a: [f64; 2], b: [f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
        let mut within = 0.0;
        let mut between = 0.0;
        let mut wn = 0;
        let mut bn = 0;
        for i in 0..y.len() {
            for j in (i + 1)..y.len() {
                if labels[i] == labels[j] {
                    within += dist(y[i], y[j]);
                    wn += 1;
                } else {
                    between += dist(y[i], y[j]);
                    bn += 1;
                }
            }
        }
        let within = within / wn as f64;
        let between = between / bn as f64;
        assert!(between > 2.0 * within, "between {between:.3} should dwarf within {within:.3}");
    }

    #[test]
    fn output_length_matches_input() {
        let (points, _) = blobs(5, 4, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let y =
            Tsne::new(TsneConfig { iterations: 10, ..Default::default() }).embed(&points, &mut rng);
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tsne::new(TsneConfig { iterations: 5, ..Default::default() });
        assert!(t.embed(&[], &mut rng).is_empty());
        assert_eq!(t.embed(&[vec![1.0, 2.0]], &mut rng), vec![[0.0, 0.0]]);
    }

    #[test]
    fn embedding_is_centered() {
        let (points, _) = blobs(20, 6, 4.0);
        let mut rng = StdRng::seed_from_u64(4);
        let y =
            Tsne::new(TsneConfig { iterations: 50, ..Default::default() }).embed(&points, &mut rng);
        let mx: f64 = y.iter().map(|p| p[0]).sum::<f64>() / y.len() as f64;
        let my: f64 = y.iter().map(|p| p[1]).sum::<f64>() / y.len() as f64;
        assert!(mx.abs() < 1e-6 && my.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inconsistent point dimensionality")]
    fn ragged_points_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        Tsne::new(TsneConfig::default()).embed(&[vec![1.0], vec![1.0, 2.0]], &mut rng);
    }
}
