//! Workloads for the Phi reproduction: the model zoo (layer shapes of every
//! network the paper evaluates) and a statistically calibrated spike
//! activation generator.
//!
//! The paper obtains activations by training VGG16, ResNet18, Spikformer,
//! SDT, SpikeBERT and SpikingBERT in PyTorch and dumping their spike
//! tensors. We cannot ship those models or datasets, so this crate provides
//! the documented substitution (see `DESIGN.md`): each layer's activation
//! matrix is *sampled* from a clustered distribution whose
//!
//! * bit density matches the per-model/dataset densities of the paper's
//!   Table 4, and
//! * per-partition cluster structure (a few dominant row patterns plus
//!   bit-flip noise plus unstructured outliers) matches the t-SNE
//!   observations of Figs. 1 and 9.
//!
//! Everything downstream — calibration, decomposition, the cycle simulators
//! — consumes only these binary matrices, so reproducing the distribution
//! reproduces the paper's measurable behaviour.
//!
//! # Example
//!
//! ```
//! use snn_workloads::{ModelId, DatasetId, WorkloadConfig};
//!
//! let config = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(256);
//! let workload = config.generate();
//! assert!(!workload.layers.is_empty());
//! let first = &workload.layers[0];
//! let density = first.activations.bit_density();
//! assert!(density > 0.01 && density < 0.3);
//! ```

pub mod generator;
pub mod models;
pub mod profile;
pub mod trace;

pub use generator::{generate_clustered, ClusterSpec, LayerWorkload, Workload, WorkloadConfig};
pub use models::{model_layers, DatasetId, ModelId, FIG8_PAIRS};
pub use profile::{activation_profile, ActivationProfile};
