//! Activation-trace import/export.
//!
//! The generator substitutes for the paper's PyTorch activation dumps, but
//! a downstream user with real traces should be able to feed them in. This
//! module defines a minimal text format — one line per activation row,
//! `0`/`1` characters per bit — plus a sparse CSV (`row,col` per set bit),
//! with round-trip guarantees. Both formats are self-describing enough to
//! produce from a two-line numpy snippet.

use snn_core::{Error, Result, SpikeMatrix};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes a spike matrix as dense `0`/`1` text, one row per line.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_dense_text(m: &SpikeMatrix, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut line = String::with_capacity(m.cols() + 1);
    for r in 0..m.rows() {
        line.clear();
        for c in 0..m.cols() {
            line.push(if m.get(r, c) { '1' } else { '0' });
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a spike matrix from dense `0`/`1` text.
///
/// # Errors
///
/// Returns [`Error::RaggedRows`] for inconsistent line lengths,
/// [`Error::InvalidParameter`] for characters other than `0`/`1`, and wraps
/// I/O failures in [`Error::InvalidParameter`].
pub fn read_dense_text(path: impl AsRef<Path>) -> Result<SpikeMatrix> {
    let file = File::open(&path).map_err(|e| Error::InvalidParameter {
        name: "path",
        reason: format!("cannot open trace: {e}"),
    })?;
    parse_dense_text(BufReader::new(file))
}

/// Parses the dense text format from any reader (exposed for testing and
/// in-memory use; pass `&mut reader` to keep ownership).
///
/// # Errors
///
/// Same conditions as [`read_dense_text`].
pub fn parse_dense_text<R: Read>(reader: R) -> Result<SpikeMatrix> {
    let mut rows: Vec<Vec<bool>> = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter {
            name: "trace",
            reason: format!("read error at line {i}: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let row: Vec<bool> = trimmed
            .chars()
            .map(|ch| match ch {
                '0' => Ok(false),
                '1' => Ok(true),
                other => Err(Error::InvalidParameter {
                    name: "trace",
                    reason: format!("invalid character {other:?} at line {i}"),
                }),
            })
            .collect::<Result<_>>()?;
        rows.push(row);
    }
    SpikeMatrix::from_rows(&rows)
}

/// Writes a spike matrix as sparse CSV: a `rows,cols` header line followed
/// by one `row,col` line per set bit.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_sparse_csv(m: &SpikeMatrix, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{},{}", m.rows(), m.cols())?;
    for r in 0..m.rows() {
        for c in m.row_ones(r) {
            writeln!(w, "{r},{c}")?;
        }
    }
    Ok(())
}

/// Reads a spike matrix from the sparse CSV format.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for malformed headers/entries or
/// out-of-bounds coordinates.
pub fn read_sparse_csv(path: impl AsRef<Path>) -> Result<SpikeMatrix> {
    let file = File::open(&path).map_err(|e| Error::InvalidParameter {
        name: "path",
        reason: format!("cannot open trace: {e}"),
    })?;
    let mut lines = BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| Error::InvalidParameter {
            name: "trace",
            reason: "empty sparse trace".to_owned(),
        })?
        .map_err(|e| Error::InvalidParameter {
            name: "trace",
            reason: format!("read error: {e}"),
        })?;
    let (rows, cols) = parse_pair(&header, 0)?;
    let mut m = SpikeMatrix::zeros(rows, cols);
    for (i, line) in lines.enumerate() {
        let line = line.map_err(|e| Error::InvalidParameter {
            name: "trace",
            reason: format!("read error at entry {i}: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let (r, c) = parse_pair(&line, i + 1)?;
        if r >= rows || c >= cols {
            return Err(Error::InvalidParameter {
                name: "trace",
                reason: format!("entry ({r}, {c}) outside {rows}x{cols}"),
            });
        }
        m.set(r, c, true);
    }
    Ok(m)
}

fn parse_pair(line: &str, lineno: usize) -> Result<(usize, usize)> {
    let mut parts = line.trim().split(',');
    let parse = |s: Option<&str>| -> Result<usize> {
        s.and_then(|v| v.trim().parse().ok()).ok_or_else(|| Error::InvalidParameter {
            name: "trace",
            reason: format!("malformed pair at line {lineno}: {line:?}"),
        })
    };
    let a = parse(parts.next())?;
    let b = parse(parts.next())?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("phi_trace_{name}_{}", std::process::id()))
    }

    #[test]
    fn dense_text_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SpikeMatrix::random(20, 33, 0.25, &mut rng);
        let path = temp("dense");
        write_dense_text(&m, &path).unwrap();
        let back = read_dense_text(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sparse_csv_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = SpikeMatrix::random(15, 64, 0.1, &mut rng);
        let path = temp("sparse");
        write_sparse_csv(&m, &path).unwrap();
        let back = read_sparse_csv(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_rejects_bad_characters() {
        let err = parse_dense_text("01x0".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }));
    }

    #[test]
    fn parse_rejects_ragged_lines() {
        let err = parse_dense_text("010\n01".as_bytes()).unwrap_err();
        assert!(matches!(err, Error::RaggedRows { .. }));
    }

    #[test]
    fn parse_skips_blank_lines() {
        let m = parse_dense_text("01\n\n10\n".as_bytes()).unwrap();
        assert_eq!(m.rows(), 2);
        assert!(m.get(0, 1));
        assert!(m.get(1, 0));
    }

    #[test]
    fn sparse_rejects_out_of_bounds() {
        let path = temp("oob");
        std::fs::write(&path, "2,2\n5,0\n").unwrap();
        assert!(read_sparse_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn imported_trace_feeds_the_pipeline() {
        // The point of the module: a trace round-trips into decomposition.
        let mut rng = StdRng::seed_from_u64(3);
        let m = SpikeMatrix::random(32, 32, 0.2, &mut rng);
        let path = temp("pipeline");
        write_dense_text(&m, &path).unwrap();
        let imported = read_dense_text(&path).unwrap();
        let patterns = phi_core_shim::calibrate(&imported, &mut rng);
        assert!(phi_core_shim::lossless(&imported, &patterns));
        std::fs::remove_file(&path).ok();
    }

    /// Tiny indirection so this crate's tests do not depend on phi-core
    /// (which depends on us only in dev); mimics calibrate+decompose with
    /// the exact-match-only subset of the rules.
    mod phi_core_shim {
        use rand::Rng;
        use snn_core::SpikeMatrix;

        pub fn calibrate<R: Rng + ?Sized>(m: &SpikeMatrix, _rng: &mut R) -> Vec<u64> {
            (0..m.rows()).map(|r| m.tile(r, 0, 16)).collect()
        }

        pub fn lossless(m: &SpikeMatrix, patterns: &[u64]) -> bool {
            (0..m.rows()).all(|r| patterns.contains(&m.tile(r, 0, 16)))
        }
    }
}
