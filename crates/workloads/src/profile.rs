//! Per-model/dataset activation statistics, taken from the paper's Table 4.
//!
//! The generator is calibrated so that sampled activations land on these bit
//! densities; the cluster parameters (prototype count, noise, outlier
//! fraction) were tuned once so that running the *actual* Phi calibration
//! and decomposition on generated data reproduces Table 4's L1/L2 density
//! split (see `EXPERIMENTS.md` for measured-vs-paper numbers).

use crate::models::{DatasetId, ModelId};
use snn_core::LayerKind;

/// Statistical profile of one model/dataset pair's activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationProfile {
    /// Target ones density (Table 4 "Bit Density").
    pub bit_density: f64,
    /// Dominant row prototypes per 16-wide partition.
    pub clusters_per_partition: usize,
    /// Per-bit XOR noise between a row-tile and its prototype.
    pub noise: f64,
    /// Fraction of row-tiles drawn i.i.d. (unclustered outliers).
    pub outlier_fraction: f64,
    /// Probability that a prototype is active in a given partition. Real
    /// activations concentrate: a tile is either near-empty or carries
    /// several bits (which is what lets 128 patterns cover most ones);
    /// within an active partition the prototype density is
    /// `bit_density / partition_active`.
    pub partition_active: f64,
}

/// Returns the profile for `model` on `dataset`.
///
/// Bit densities are the paper's Table 4 values; SpikeBERT (absent from
/// Table 4) uses SpikingBERT-like language-model densities, consistent with
/// its Fig. 8 behaviour.
pub fn activation_profile(model: ModelId, dataset: DatasetId) -> ActivationProfile {
    let bit_density = match (model, dataset) {
        (ModelId::Vgg16, DatasetId::Cifar10) => 0.087,
        (ModelId::Vgg16, DatasetId::Cifar100) => 0.106,
        (ModelId::ResNet18, DatasetId::Cifar10) => 0.074,
        (ModelId::ResNet18, DatasetId::Cifar100) => 0.070,
        (ModelId::Spikformer, DatasetId::Cifar10Dvs) => 0.119,
        (ModelId::Spikformer, _) => 0.142,
        (ModelId::Sdt, DatasetId::Cifar10Dvs) => 0.112,
        (ModelId::Sdt, _) => 0.152,
        (ModelId::SpikeBert, _) => 0.180,
        (ModelId::SpikingBert, DatasetId::Mnli) => 0.210,
        (ModelId::SpikingBert, _) => 0.203,
        // CNNs on unusual datasets: fall back to their CIFAR100 profile.
        (ModelId::Vgg16, _) => 0.106,
        (ModelId::ResNet18, _) => 0.070,
    };
    // Cluster structure: CNNs cluster tightly (Fig. 1c); language models are
    // denser and noisier (their Table 4 speedups over bit are lower per
    // density point).
    let (clusters_per_partition, noise, outlier_fraction, partition_active) = match model {
        ModelId::Vgg16 | ModelId::ResNet18 => (10, 0.009, 0.06, 0.25),
        ModelId::Spikformer | ModelId::Sdt => (14, 0.018, 0.09, 0.40),
        ModelId::SpikeBert | ModelId::SpikingBert => (20, 0.030, 0.11, 0.55),
    };
    ActivationProfile {
        bit_density,
        clusters_per_partition,
        noise,
        outlier_fraction,
        partition_active,
    }
}

/// Scales a profile's density for a specific layer kind: attention
/// activations run denser than conv activations in the published traces,
/// while MLP expansion layers run sparser.
pub fn kind_density_factor(kind: LayerKind) -> f64 {
    match kind {
        LayerKind::Linear => 0.9,
        LayerKind::Attention => 1.1,
        LayerKind::Mlp => 0.85,
        // Conv and any future kinds use the profile density unchanged.
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_densities_are_reproduced() {
        assert_eq!(activation_profile(ModelId::Vgg16, DatasetId::Cifar10).bit_density, 0.087);
        assert_eq!(activation_profile(ModelId::SpikingBert, DatasetId::Mnli).bit_density, 0.210);
        assert_eq!(
            activation_profile(ModelId::Spikformer, DatasetId::Cifar10Dvs).bit_density,
            0.119
        );
    }

    #[test]
    fn every_pair_has_a_sane_profile() {
        for model in ModelId::ALL {
            for dataset in [
                DatasetId::Cifar10,
                DatasetId::Cifar100,
                DatasetId::Cifar10Dvs,
                DatasetId::Sst2,
                DatasetId::Sst5,
                DatasetId::Mnli,
            ] {
                let p = activation_profile(model, dataset);
                assert!(p.bit_density > 0.0 && p.bit_density < 0.5);
                assert!(p.noise < p.bit_density, "{model}/{dataset}");
                assert!(p.outlier_fraction < 0.5);
                assert!(p.clusters_per_partition >= 2);
            }
        }
    }

    #[test]
    fn kind_factors_order_attention_above_conv() {
        assert!(kind_density_factor(LayerKind::Attention) > kind_density_factor(LayerKind::Conv));
        assert!(kind_density_factor(LayerKind::Mlp) < kind_density_factor(LayerKind::Conv));
    }
}
