//! Clustered spike-activation generator.
//!
//! Samples binary activation matrices from the distribution family the
//! paper's t-SNE analysis reveals (Figs. 1c, 9a): within each width-`k`
//! partition, row-tiles concentrate around a small set of prototypes with
//! light bit-flip noise, plus a minority of unstructured outlier rows.
//! "Training" (calibration) and "test" (runtime) activations are drawn from
//! the *same* prototypes, reproducing the train/test distribution
//! consistency that makes offline calibration work.

use crate::models::{model_layers, DatasetId, ModelId};
use crate::profile::{activation_profile, kind_density_factor, ActivationProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_core::{LayerSpec, SpikeMatrix};

/// The latent cluster structure of one layer's activations: per-partition
/// prototypes shared between calibration and runtime draws.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    k: usize,
    cols: usize,
    /// `prototypes[part][cluster]` is a `k`-bit word.
    prototypes: Vec<Vec<u64>>,
    /// Cumulative sampling weights over clusters (Zipf-like, so a few
    /// patterns dominate — matching the dense clusters in Fig. 1c).
    cumulative: Vec<f64>,
    density: f64,
    noise: f64,
    outlier_fraction: f64,
    partition_active: f64,
}

impl ClusterSpec {
    /// Draws a latent cluster structure for a `cols`-wide layer.
    ///
    /// Prototypes follow the concentration structure real SNN traces show:
    /// a prototype is *active* in a partition with probability
    /// `partition_active`, and active partitions carry
    /// `density / partition_active` bit density (several bits per tile), so
    /// the overall density still equals `density` while tiles are either
    /// near-empty or pattern-rich.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not within `1..=64`, `clusters == 0`, or
    /// `partition_active` is not within `(0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        cols: usize,
        k: usize,
        clusters: usize,
        density: f64,
        noise: f64,
        outlier_fraction: f64,
        partition_active: f64,
        rng: &mut R,
    ) -> Self {
        assert!((1..=64).contains(&k), "k must be within 1..=64");
        assert!(clusters > 0, "need at least one cluster");
        assert!(
            partition_active > 0.0 && partition_active <= 1.0,
            "partition_active must be within (0, 1]"
        );
        let parts = cols.div_ceil(k);
        // XOR noise raises density by ≈ noise·(1−2d); compensate so the
        // sampled matrix lands on the target.
        let base_density = (density - noise * (1.0 - 2.0 * density)).max(0.004);
        let active_density = (base_density / partition_active).min(0.45);
        let prototypes = (0..parts)
            .map(|part| {
                let width = k.min(cols - part * k);
                (0..clusters)
                    .map(|_| {
                        if !rng.gen_bool(partition_active) {
                            return 0u64;
                        }
                        let mut bits = 0u64;
                        for b in 0..width {
                            if rng.gen_bool(active_density) {
                                bits |= 1 << b;
                            }
                        }
                        bits
                    })
                    .collect()
            })
            .collect();
        // Zipf(1.2) weights: cluster 0 dominates, the tail thins out.
        let weights: Vec<f64> = (0..clusters).map(|i| 1.0 / ((i + 1) as f64).powf(1.2)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ClusterSpec {
            k,
            cols,
            prototypes,
            cumulative,
            density,
            noise,
            outlier_fraction,
            partition_active,
        }
    }

    /// Re-draws the latent structure with the same distribution
    /// *parameters* (width, cluster count, density, noise, outliers,
    /// partition activity) but fresh prototypes from `rng` — a
    /// distribution shift in the sense that matters to Phi: per-tile
    /// statistics are unchanged, yet the concrete patterns a calibrated
    /// artifact matched against are gone.
    pub fn redrawn<R: Rng + ?Sized>(&self, rng: &mut R) -> ClusterSpec {
        ClusterSpec::new(
            self.cols,
            self.k,
            self.clusters(),
            self.density,
            self.noise,
            self.outlier_fraction,
            self.partition_active,
            rng,
        )
    }

    /// Partition width.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of latent clusters.
    pub fn clusters(&self) -> usize {
        self.cumulative.len()
    }

    fn pick_cluster<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.gen();
        self.cumulative.iter().position(|&c| x <= c).unwrap_or(self.cumulative.len() - 1)
    }

    /// Samples `rows` activation rows from this cluster structure.
    pub fn sample<R: Rng + ?Sized>(&self, rows: usize, rng: &mut R) -> SpikeMatrix {
        let parts = self.cols.div_ceil(self.k);
        let mut m = SpikeMatrix::zeros(rows, self.cols);
        for r in 0..rows {
            let outlier = rng.gen_bool(self.outlier_fraction);
            let cluster = self.pick_cluster(rng);
            for part in 0..parts {
                let width = self.k.min(self.cols - part * self.k);
                let tile = if outlier {
                    let mut bits = 0u64;
                    for b in 0..width {
                        if rng.gen_bool(self.density) {
                            bits |= 1 << b;
                        }
                    }
                    bits
                } else {
                    let mut bits = self.prototypes[part][cluster];
                    for b in 0..width {
                        if rng.gen_bool(self.noise) {
                            bits ^= 1 << b;
                        }
                    }
                    bits
                };
                m.set_tile(r, part * self.k, width, tile);
            }
        }
        m
    }
}

/// Generates a one-off clustered matrix (used by tests and the analysis
/// figures); returns the matrix and its latent structure.
pub fn generate_clustered<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    profile: &ActivationProfile,
    k: usize,
    rng: &mut R,
) -> (SpikeMatrix, ClusterSpec) {
    let spec = ClusterSpec::new(
        cols,
        k,
        profile.clusters_per_partition,
        profile.bit_density,
        profile.noise,
        profile.outlier_fraction,
        profile.partition_active,
        rng,
    );
    let m = spec.sample(rows, rng);
    (m, spec)
}

/// One generated layer: its spec, runtime activations, and an independent
/// calibration draw from the same latent distribution.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// The layer's GEMM shape and metadata.
    pub spec: LayerSpec,
    /// Runtime ("test") activations: up to `max_rows` of the layer's
    /// `M × timesteps` total rows.
    pub activations: SpikeMatrix,
    /// Calibration ("training") activations, an independent draw.
    pub calibration: SpikeMatrix,
    /// `total_rows / sampled_rows`: simulators multiply their per-row cycle
    /// counts by this to report full-layer numbers.
    pub row_scale: f64,
    /// The latent cluster structure both draws came from. Retained so that
    /// serving traffic ([`Workload::sample_requests`]) can keep drawing
    /// fresh inputs from the *same* distribution the patterns were
    /// calibrated on — the train/test consistency of Fig. 9a.
    pub cluster: ClusterSpec,
}

impl LayerWorkload {
    /// Paper-defined operation count of this layer at full scale: one OP per
    /// '1' bit per output column.
    pub fn bit_ops(&self) -> f64 {
        self.activations.nnz() as f64 * self.row_scale * self.spec.shape.n as f64
    }

    /// Dense operation count (`M·K·N·T`).
    pub fn dense_ops(&self) -> f64 {
        self.spec.dense_ops() as f64
    }
}

/// A complete generated workload for one model/dataset pair.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model identity.
    pub model: ModelId,
    /// Dataset identity.
    pub dataset: DatasetId,
    /// The activation profile used.
    pub profile: ActivationProfile,
    /// Per-layer data.
    pub layers: Vec<LayerWorkload>,
}

impl Workload {
    /// Total bit-sparsity operations across layers (the paper's OP metric).
    pub fn total_bit_ops(&self) -> f64 {
        self.layers.iter().map(LayerWorkload::bit_ops).sum()
    }

    /// Total dense operations across layers.
    pub fn total_dense_ops(&self) -> f64 {
        self.layers.iter().map(LayerWorkload::dense_ops).sum()
    }

    /// Draws a batch of serving requests from the workload's latent
    /// activation distribution.
    ///
    /// Each request holds one spike matrix per layer with `rows_per_layer`
    /// rows — a row-subsampled trace of that inference's `M × T` activation
    /// rows, extrapolated to full scale by [`Workload::request_row_scale`].
    /// Because requests are drawn from the same [`ClusterSpec`]s the
    /// calibration split came from, patterns compiled offline keep matching
    /// serving traffic, which is the premise of the compiled-artifact
    /// runtime.
    ///
    /// Deterministic in `(seed, request index, layer index)` and
    /// independent per request, so batches can be regenerated, reordered,
    /// or sharded freely.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_layer` is zero.
    pub fn sample_requests(
        &self,
        count: usize,
        rows_per_layer: usize,
        seed: u64,
    ) -> Vec<Vec<SpikeMatrix>> {
        assert!(rows_per_layer > 0, "requests need at least one row per layer");
        let layers = self.layers.len() as u64;
        (0..count)
            .map(|r| {
                self.layers
                    .iter()
                    .enumerate()
                    .map(|(i, layer)| {
                        let stream = (r as u64) * layers + i as u64 + 1;
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        layer.cluster.sample(rows_per_layer, &mut rng)
                    })
                    .collect()
            })
            .collect()
    }

    /// Draws one client's serving traffic for a multi-client benchmark:
    /// the same per-layer latent distribution as
    /// [`Workload::sample_requests`], but each `client` id derives its own
    /// disjoint deterministic stream, so concurrent closed-loop clients
    /// submit distinct (yet reproducible) traffic without coordinating.
    ///
    /// Deterministic in `(seed, client, request index, layer index)`;
    /// different clients mix `client` into the stream seed, so their
    /// request sequences differ (statistically — the mix is a hash, not
    /// a bijection proof) while every client stays on the calibrated
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_layer` is zero.
    pub fn sample_client_requests(
        &self,
        client: u64,
        count: usize,
        rows_per_layer: usize,
        seed: u64,
    ) -> Vec<Vec<SpikeMatrix>> {
        // A distinct odd multiplier plus a constant offset keeps client
        // streams apart from each other and from plain
        // `sample_requests(seed)` draws (the offset covers the wrapping
        // client id whose multiplied term would otherwise be zero).
        let client_seed = seed
            ^ 0xA02B_DBF7_8BB0_96EA
            ^ client.wrapping_add(1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        self.sample_requests(count, rows_per_layer, client_seed)
    }

    /// Derives a drift-shifted sibling of this workload: every layer's
    /// latent cluster structure is [re-drawn](ClusterSpec::redrawn) with
    /// the same distribution parameters but fresh prototypes, and the
    /// calibration/runtime splits are re-sampled from the new structure at
    /// the same row counts. Layer specs, row scales, and the profile carry
    /// over, so the drifted workload compiles and serves interchangeably
    /// with the original — but patterns calibrated on the original stop
    /// matching its traffic, which is exactly the scenario the serving
    /// lifecycle's recalibration path exists for.
    ///
    /// Deterministic in `(self, seed)`, with per-layer streams derived
    /// from `(seed, layer index)` alone.
    pub fn drifted(&self, seed: u64) -> Workload {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (i as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                let cluster = layer.cluster.redrawn(&mut rng);
                let calibration = cluster.sample(layer.calibration.rows(), &mut rng);
                let activations = cluster.sample(layer.activations.rows(), &mut rng);
                LayerWorkload {
                    spec: layer.spec.clone(),
                    activations,
                    calibration,
                    row_scale: layer.row_scale,
                    cluster,
                }
            })
            .collect();
        Workload { model: self.model, dataset: self.dataset, profile: self.profile, layers }
    }

    /// The extrapolation factor from a request's `rows_per_layer`
    /// subsampled rows to the layer's full `M × T` rows (the serving
    /// counterpart of [`LayerWorkload::row_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or `rows_per_layer` is zero.
    pub fn request_row_scale(&self, layer: usize, rows_per_layer: usize) -> f64 {
        assert!(rows_per_layer > 0, "requests need at least one row per layer");
        let spec = &self.layers[layer].spec;
        (spec.shape.m * spec.timesteps) as f64 / rows_per_layer as f64
    }
}

/// Configuration for workload generation.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Model to generate.
    pub model: ModelId,
    /// Dataset to generate.
    pub dataset: DatasetId,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Cap on runtime activation rows per layer (`M × timesteps` rows are
    /// subsampled beyond this; `row_scale` records the factor).
    pub max_rows: usize,
    /// Calibration rows per layer.
    pub calibration_rows: usize,
    /// Partition width used for the latent cluster structure (the paper's
    /// pattern width; decompositions may still probe other widths).
    pub k: usize,
}

impl WorkloadConfig {
    /// Creates a config with paper defaults (`k = 16`, 4096-row cap).
    pub fn new(model: ModelId, dataset: DatasetId) -> Self {
        WorkloadConfig {
            model,
            dataset,
            seed: 0xC0FFEE,
            max_rows: 4096,
            calibration_rows: 1024,
            k: 16,
        }
    }

    /// Overrides the per-layer row cap.
    pub fn with_max_rows(mut self, max_rows: usize) -> Self {
        self.max_rows = max_rows;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the calibration row count.
    pub fn with_calibration_rows(mut self, rows: usize) -> Self {
        self.calibration_rows = rows;
        self
    }

    /// Generates the workload.
    pub fn generate(&self) -> Workload {
        let profile = activation_profile(self.model, self.dataset);
        let layers = model_layers(self.model, self.dataset);
        let mut out = Vec::with_capacity(layers.len());
        for (i, spec) in layers.into_iter().enumerate() {
            // Stable per-layer seed: reordering or skipping layers elsewhere
            // does not perturb this layer's data.
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let density = (profile.bit_density * kind_density_factor(spec.kind)).clamp(0.005, 0.6);
            let layer_profile = ActivationProfile { bit_density: density, ..profile };
            let spec_cols = spec.shape.k;
            let total_rows = spec.shape.m * spec.timesteps;
            let rows = total_rows.min(self.max_rows);
            let (_, cluster) = generate_clustered(0, spec_cols, &layer_profile, self.k, &mut rng);
            let calibration =
                cluster.sample(self.calibration_rows.min(total_rows.max(1)), &mut rng);
            let activations = cluster.sample(rows.max(1), &mut rng);
            let row_scale = total_rows as f64 / rows.max(1) as f64;
            out.push(LayerWorkload { spec, activations, calibration, row_scale, cluster });
        }
        Workload { model: self.model, dataset: self.dataset, profile, layers: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phi_core_check::check_clusters;

    /// Minimal inline re-implementation of pattern matching quality used to
    /// validate that generated data is genuinely clustered (the real check
    /// against `phi-core` lives in the integration tests).
    mod phi_core_check {
        use snn_core::SpikeMatrix;
        use std::collections::HashMap;

        /// Fraction of row-tiles whose exact tile value repeats ≥ 4 times —
        /// near zero for i.i.d. data at low density, high for clustered data.
        pub fn check_clusters(m: &SpikeMatrix, k: usize) -> f64 {
            let parts = m.num_partitions(k);
            let mut freq: HashMap<(usize, u64), u32> = HashMap::new();
            for r in 0..m.rows() {
                for p in 0..parts {
                    *freq.entry((p, m.partition_tile(r, p, k))).or_insert(0) += 1;
                }
            }
            let total: u32 = freq.values().sum();
            let repeated: u32 = freq.values().filter(|&&c| c >= 4).sum();
            f64::from(repeated) / f64::from(total)
        }
    }

    #[test]
    fn generated_density_tracks_profile() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(512).generate();
        // Average density across conv layers should track the profile within
        // a small tolerance (noise shifts it slightly upward).
        let (mut nnz, mut total) = (0f64, 0f64);
        for l in &w.layers {
            nnz += l.activations.nnz() as f64;
            total += (l.activations.rows() * l.activations.cols()) as f64;
        }
        let density = nnz / total;
        assert!(
            (density - 0.087).abs() < 0.03,
            "generated density {density} too far from profile 0.087"
        );
    }

    #[test]
    fn activations_are_clustered_but_random_is_not() {
        let mut rng = StdRng::seed_from_u64(10);
        let profile = activation_profile(ModelId::Vgg16, DatasetId::Cifar100);
        let (clustered, _) = generate_clustered(512, 64, &profile, 16, &mut rng);
        let random = SpikeMatrix::random(512, 64, profile.bit_density, &mut rng);
        let c_score = check_clusters(&clustered, 16);
        let r_score = check_clusters(&random, 16);
        assert!(c_score > r_score, "clustered score {c_score} should exceed random {r_score}");
    }

    #[test]
    fn calibration_and_runtime_share_distribution() {
        let w = WorkloadConfig::new(ModelId::ResNet18, DatasetId::Cifar10)
            .with_max_rows(512)
            .generate();
        let l = &w.layers[2];
        let d_cal = l.calibration.bit_density();
        let d_run = l.activations.bit_density();
        assert!((d_cal - d_run).abs() < 0.03, "cal {d_cal} vs run {d_run}");
    }

    #[test]
    fn row_scale_accounts_for_subsampling() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(100).generate();
        let first = &w.layers[0]; // M*T = 4096 rows, capped at 100
        assert_eq!(first.activations.rows(), 100);
        assert!((first.row_scale - 40.96).abs() < 1e-9);
        // bit_ops scales back to full size.
        let density = first.activations.bit_density();
        let expected = density * 4096.0 * 27.0 * 64.0;
        assert!((first.bit_ops() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkloadConfig::new(ModelId::Sdt, DatasetId::Cifar100).with_max_rows(64).generate();
        let b = WorkloadConfig::new(ModelId::Sdt, DatasetId::Cifar100).with_max_rows(64).generate();
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.activations, lb.activations);
        }
        let c = WorkloadConfig::new(ModelId::Sdt, DatasetId::Cifar100)
            .with_max_rows(64)
            .with_seed(1)
            .generate();
        assert_ne!(a.layers[0].activations, c.layers[0].activations);
    }

    #[test]
    fn total_ops_are_positive_for_all_pairs() {
        for (model, dataset) in crate::models::FIG8_PAIRS {
            let w = WorkloadConfig::new(model, dataset).with_max_rows(64).generate();
            assert!(w.total_bit_ops() > 0.0, "{model}/{dataset}");
            assert!(w.total_dense_ops() > w.total_bit_ops());
        }
    }

    #[test]
    fn sample_requests_is_deterministic_and_on_distribution() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(256).generate();
        let a = w.sample_requests(3, 4, 99);
        let b = w.sample_requests(3, 4, 99);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for request in &a {
            assert_eq!(request.len(), w.layers.len());
            for (m, layer) in request.iter().zip(&w.layers) {
                assert_eq!(m.rows(), 4);
                assert_eq!(m.cols(), layer.spec.shape.k);
            }
        }
        // Requests differ from each other and across seeds.
        assert_ne!(a[0], a[1]);
        assert_ne!(w.sample_requests(1, 4, 100)[0], a[0]);
        // Density tracks the layer distribution (averaged over the model to
        // smooth per-layer noise at 4 rows).
        let (mut nnz, mut total) = (0f64, 0f64);
        for m in a.iter().flatten() {
            nnz += m.nnz() as f64;
            total += (m.rows() * m.cols()) as f64;
        }
        let density = nnz / total;
        assert!((density - 0.087).abs() < 0.05, "request density {density} off-profile");
    }

    #[test]
    fn sample_requests_reproduce_across_workload_generations() {
        // Backend benches draw their request batches from a freshly
        // generated workload each run: the same (config, seed) must yield
        // the same requests process-to-process, and a request's content
        // must depend only on (seed, request index, layer index) — so a
        // shorter draw is a strict prefix of a longer one and batches can
        // be resized or sharded without perturbing the traffic.
        let config = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(128);
        let a = config.generate().sample_requests(6, 4, 0xBA7C4);
        let b = config.generate().sample_requests(6, 4, 0xBA7C4);
        assert_eq!(a, b, "fresh generations must reproduce the same requests");
        let prefix = config.generate().sample_requests(3, 4, 0xBA7C4);
        assert_eq!(&a[..3], &prefix[..], "request count must not perturb earlier requests");
    }

    #[test]
    fn client_streams_are_deterministic_and_disjoint() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(128).generate();
        let a0 = w.sample_client_requests(0, 3, 4, 42);
        let a1 = w.sample_client_requests(1, 3, 4, 42);
        // Reproducible per client, distinct across clients and seeds.
        assert_eq!(a0, w.sample_client_requests(0, 3, 4, 42));
        assert_ne!(a0, a1);
        assert_ne!(a0, w.sample_client_requests(0, 3, 4, 43));
        // Every client's requests stay shaped like plain sampled traffic.
        for request in a0.iter().chain(&a1) {
            assert_eq!(request.len(), w.layers.len());
            for (m, layer) in request.iter().zip(&w.layers) {
                assert_eq!((m.rows(), m.cols()), (4, layer.spec.shape.k));
            }
        }
    }

    #[test]
    fn drifted_workload_keeps_shape_and_distribution_but_not_prototypes() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(128).generate();
        let d = w.drifted(0x5EED);
        // Deterministic in (workload, seed); distinct seeds drift apart.
        assert_eq!(d.layers[0].activations, w.drifted(0x5EED).layers[0].activations);
        assert_ne!(d.layers[0].activations, w.drifted(0x5EED + 1).layers[0].activations);
        for (dl, wl) in d.layers.iter().zip(&w.layers) {
            // Same specs, splits, and scales — only the latent prototypes moved.
            assert_eq!(dl.spec, wl.spec);
            assert_eq!(dl.row_scale, wl.row_scale);
            assert_eq!(dl.activations.rows(), wl.activations.rows());
            assert_eq!(dl.calibration.rows(), wl.calibration.rows());
            assert_eq!(dl.cluster.k(), wl.cluster.k());
            assert_eq!(dl.cluster.clusters(), wl.cluster.clusters());
            assert_ne!(dl.activations, wl.activations, "{}", wl.spec.name);
        }
        // Distribution parameters carry over: aggregate density matches.
        let density = |w: &Workload| {
            let (mut nnz, mut total) = (0f64, 0f64);
            for l in &w.layers {
                nnz += l.activations.nnz() as f64;
                total += (l.activations.rows() * l.activations.cols()) as f64;
            }
            nnz / total
        };
        assert!((density(&d) - density(&w)).abs() < 0.02);
        // Drifted traffic is still clustered — it is a shift, not noise.
        let score = check_clusters(&d.layers[2].activations, d.layers[2].cluster.k());
        assert!(score > 0.3, "drifted activations lost their cluster structure ({score})");
    }

    #[test]
    fn request_row_scale_extrapolates_to_full_layer() {
        let w =
            WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10).with_max_rows(64).generate();
        // Layer 0 of VGG-16/CIFAR-10: M = 1024, T = 4.
        assert!((w.request_row_scale(0, 4) - 1024.0).abs() < 1e-12);
    }

    #[test]
    fn cluster_spec_sampling_respects_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ClusterSpec::new(20, 16, 4, 0.3, 0.02, 0.1, 0.8, &mut rng);
        let m = spec.sample(16, &mut rng);
        assert_eq!(m.cols(), 20);
        assert_eq!(m.rows(), 16);
    }
}
