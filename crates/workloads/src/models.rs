//! The model zoo: GEMM-shaped layer lists for every network in the paper's
//! evaluation (§5.1).
//!
//! Shapes follow the published architectures at CIFAR/DVS/GLUE scale:
//!
//! * **VGG16** — the 13-conv CIFAR variant (3×3, stride 1, pad 1, pooling
//!   after blocks) with a 512→512→classes classifier;
//! * **ResNet18** — CIFAR stem (3×3/1) and four 2-block stages with
//!   downsampling shortcuts;
//! * **Spikformer** — SPS conv stem + `L` encoder blocks of spiking
//!   self-attention (Q/K/V projections, QKᵀ, attn·V, output projection) and
//!   a 4× MLP (Spikformer-4-384 for CIFAR, -2-256 for DVS);
//! * **SDT** — the spike-driven transformer at the same scales;
//! * **SpikeBERT / SpikingBERT** — BERT-style encoders (hidden 768, 4× MLP)
//!   at reduced depth (6 layers) and sequence length (64), a documented
//!   scale reduction that preserves per-layer GEMM shapes.
//!
//! Timesteps: 4 for static datasets, 8 for event-driven CIFAR10-DVS (the
//! papers use 4–16; we pick the middle and keep it consistent across
//! models so cross-model comparisons are fair).

use snn_core::{conv2d_gemm, GemmShape, LayerKind, LayerSpec};
use std::fmt;

/// The SNN models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// Spiking VGG-16 (CNN).
    Vgg16,
    /// Spiking ResNet-18 (CNN).
    ResNet18,
    /// Spikformer (spiking vision transformer).
    Spikformer,
    /// Spike-Driven Transformer.
    Sdt,
    /// SpikeBERT (spiking language model).
    SpikeBert,
    /// SpikingBERT (spiking language model).
    SpikingBert,
}

impl ModelId {
    /// All models, in the paper's reporting order.
    pub const ALL: [ModelId; 6] = [
        ModelId::Vgg16,
        ModelId::ResNet18,
        ModelId::Spikformer,
        ModelId::Sdt,
        ModelId::SpikeBert,
        ModelId::SpikingBert,
    ];
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelId::Vgg16 => "VGG16",
            ModelId::ResNet18 => "ResNet18",
            ModelId::Spikformer => "Spikformer",
            ModelId::Sdt => "SDT",
            ModelId::SpikeBert => "SpikeBERT",
            ModelId::SpikingBert => "SpikingBERT",
        };
        f.write_str(name)
    }
}

/// The datasets the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// CIFAR-10 (32×32 RGB, 10 classes).
    Cifar10,
    /// CIFAR-100 (32×32 RGB, 100 classes).
    Cifar100,
    /// CIFAR10-DVS (event streams, 10 classes).
    Cifar10Dvs,
    /// SST-2 sentiment (GLUE).
    Sst2,
    /// SST-5 sentiment.
    Sst5,
    /// MNLI inference (GLUE).
    Mnli,
}

impl DatasetId {
    /// Number of classes (for classifier-head widths).
    pub fn classes(&self) -> usize {
        match self {
            DatasetId::Cifar10 | DatasetId::Cifar10Dvs => 10,
            DatasetId::Cifar100 => 100,
            DatasetId::Sst2 | DatasetId::Mnli => 2,
            DatasetId::Sst5 => 5,
        }
    }

    /// SNN timesteps used for this dataset.
    pub fn timesteps(&self) -> usize {
        match self {
            DatasetId::Cifar10Dvs => 8,
            _ => 4,
        }
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetId::Cifar10 => "CIFAR10",
            DatasetId::Cifar100 => "CIFAR100",
            DatasetId::Cifar10Dvs => "CIFAR10-DVS",
            DatasetId::Sst2 => "SST-2",
            DatasetId::Sst5 => "SST-5",
            DatasetId::Mnli => "MNLI",
        };
        f.write_str(name)
    }
}

/// The model/dataset pairs evaluated in Fig. 8, in reporting order.
pub const FIG8_PAIRS: [(ModelId, DatasetId); 12] = [
    (ModelId::Vgg16, DatasetId::Cifar10),
    (ModelId::Vgg16, DatasetId::Cifar100),
    (ModelId::ResNet18, DatasetId::Cifar10),
    (ModelId::ResNet18, DatasetId::Cifar100),
    (ModelId::Spikformer, DatasetId::Cifar10Dvs),
    (ModelId::Spikformer, DatasetId::Cifar100),
    (ModelId::Sdt, DatasetId::Cifar10Dvs),
    (ModelId::Sdt, DatasetId::Cifar100),
    (ModelId::SpikeBert, DatasetId::Sst2),
    (ModelId::SpikeBert, DatasetId::Sst5),
    (ModelId::SpikingBert, DatasetId::Sst2),
    (ModelId::SpikingBert, DatasetId::Mnli),
];

/// Returns the GEMM layer list of `model` on `dataset`.
pub fn model_layers(model: ModelId, dataset: DatasetId) -> Vec<LayerSpec> {
    let t = dataset.timesteps();
    let classes = dataset.classes();
    match model {
        ModelId::Vgg16 => vgg16(t, classes),
        ModelId::ResNet18 => resnet18(t, classes),
        ModelId::Spikformer | ModelId::Sdt => {
            // Spikformer-4-384 for static data, -2-256 for DVS; SDT shares
            // scales with its paper's CIFAR/DVS configurations.
            let (dim, depth, tokens) =
                if dataset == DatasetId::Cifar10Dvs { (256, 2, 64) } else { (384, 4, 64) };
            let prefix = if model == ModelId::Spikformer { "spikf" } else { "sdt" };
            vision_transformer(prefix, t, classes, dim, depth, tokens, model == ModelId::Sdt)
        }
        ModelId::SpikeBert => bert_encoder("spikebert", t, classes, 768, 6, 64),
        ModelId::SpikingBert => bert_encoder("spikingbert", t, classes, 768, 6, 64),
    }
}

fn conv(
    name: &str,
    input: (usize, usize, usize),
    c_out: usize,
    stride: usize,
    t: usize,
) -> LayerSpec {
    LayerSpec::new(name, LayerKind::Conv, conv2d_gemm(input, c_out, 3, stride, 1), t)
}

fn vgg16(t: usize, classes: usize) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    // (spatial, in-channels) per conv, pooling between blocks.
    let blocks: [(usize, usize, &[usize]); 5] = [
        (32, 3, &[64, 64]),
        (16, 64, &[128, 128]),
        (8, 128, &[256, 256, 256]),
        (4, 256, &[512, 512, 512]),
        (2, 512, &[512, 512, 512]),
    ];
    for (b, &(hw, mut c_in, widths)) in blocks.iter().enumerate() {
        for (i, &c_out) in widths.iter().enumerate() {
            layers.push(conv(&format!("conv{}_{}", b + 1, i + 1), (hw, hw, c_in), c_out, 1, t));
            c_in = c_out;
        }
    }
    layers.push(LayerSpec::new("fc1", LayerKind::Linear, GemmShape::new(1, 512, 512), t));
    layers.push(LayerSpec::new("fc2", LayerKind::Linear, GemmShape::new(1, 512, classes), t));
    layers
}

fn resnet18(t: usize, classes: usize) -> Vec<LayerSpec> {
    let mut layers = vec![conv("conv1", (32, 32, 3), 64, 1, t)];
    let stages: [(usize, usize, usize, bool); 4] =
        [(32, 64, 64, false), (32, 64, 128, true), (16, 128, 256, true), (8, 256, 512, true)];
    for (s, &(hw, c_in, c_out, downsample)) in stages.iter().enumerate() {
        let out_hw = if downsample { hw / 2 } else { hw };
        // Block 1 (possibly strided) + projection shortcut when downsampling.
        layers.push(conv(
            &format!("s{}b1c1", s + 1),
            (hw, hw, c_in),
            c_out,
            if downsample { 2 } else { 1 },
            t,
        ));
        layers.push(conv(&format!("s{}b1c2", s + 1), (out_hw, out_hw, c_out), c_out, 1, t));
        if downsample {
            layers.push(LayerSpec::new(
                format!("s{}proj", s + 1),
                LayerKind::Conv,
                conv2d_gemm((hw, hw, c_in), c_out, 1, 2, 0),
                t,
            ));
        }
        // Block 2.
        layers.push(conv(&format!("s{}b2c1", s + 1), (out_hw, out_hw, c_out), c_out, 1, t));
        layers.push(conv(&format!("s{}b2c2", s + 1), (out_hw, out_hw, c_out), c_out, 1, t));
    }
    layers.push(LayerSpec::new("fc", LayerKind::Linear, GemmShape::new(1, 512, classes), t));
    layers
}

fn vision_transformer(
    prefix: &str,
    t: usize,
    classes: usize,
    dim: usize,
    depth: usize,
    tokens: usize,
    linear_attention: bool,
) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    // SPS stem: two convs bringing the image to `tokens` embeddings.
    layers.push(conv(&format!("{prefix}_sps1"), (32, 32, 3), dim / 4, 1, t));
    layers.push(conv(&format!("{prefix}_sps2"), (16, 16, dim / 4), dim, 2, t));
    for b in 0..depth {
        for proj in ["q", "k", "v"] {
            layers.push(LayerSpec::new(
                format!("{prefix}_b{b}_{proj}"),
                LayerKind::Attention,
                GemmShape::new(tokens, dim, dim),
                t,
            ));
        }
        if !linear_attention {
            // Spiking self-attention: QKᵀ then attn·V, both spike GEMMs.
            layers.push(LayerSpec::new(
                format!("{prefix}_b{b}_qk"),
                LayerKind::Attention,
                GemmShape::new(tokens, dim, tokens),
                t,
            ));
            layers.push(LayerSpec::new(
                format!("{prefix}_b{b}_av"),
                LayerKind::Attention,
                GemmShape::new(tokens, tokens, dim),
                t,
            ));
        }
        layers.push(LayerSpec::new(
            format!("{prefix}_b{b}_proj"),
            LayerKind::Attention,
            GemmShape::new(tokens, dim, dim),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_b{b}_mlp1"),
            LayerKind::Mlp,
            GemmShape::new(tokens, dim, dim * 4),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_b{b}_mlp2"),
            LayerKind::Mlp,
            GemmShape::new(tokens, dim * 4, dim),
            t,
        ));
    }
    layers.push(LayerSpec::new(
        format!("{prefix}_head"),
        LayerKind::Linear,
        GemmShape::new(1, dim, classes),
        t,
    ));
    layers
}

fn bert_encoder(
    prefix: &str,
    t: usize,
    classes: usize,
    hidden: usize,
    depth: usize,
    seq: usize,
) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    for b in 0..depth {
        for proj in ["q", "k", "v"] {
            layers.push(LayerSpec::new(
                format!("{prefix}_l{b}_{proj}"),
                LayerKind::Attention,
                GemmShape::new(seq, hidden, hidden),
                t,
            ));
        }
        layers.push(LayerSpec::new(
            format!("{prefix}_l{b}_qk"),
            LayerKind::Attention,
            GemmShape::new(seq, hidden, seq),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_l{b}_av"),
            LayerKind::Attention,
            GemmShape::new(seq, seq, hidden),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_l{b}_proj"),
            LayerKind::Attention,
            GemmShape::new(seq, hidden, hidden),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_l{b}_ff1"),
            LayerKind::Mlp,
            GemmShape::new(seq, hidden, hidden * 4),
            t,
        ));
        layers.push(LayerSpec::new(
            format!("{prefix}_l{b}_ff2"),
            LayerKind::Mlp,
            GemmShape::new(seq, hidden * 4, hidden),
            t,
        ));
    }
    layers.push(LayerSpec::new(
        format!("{prefix}_head"),
        LayerKind::Linear,
        GemmShape::new(1, hidden, classes),
        t,
    ));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_convs_and_2_fcs() {
        let layers = model_layers(ModelId::Vgg16, DatasetId::Cifar100);
        let convs = layers.iter().filter(|l| l.kind == LayerKind::Conv).count();
        let fcs = layers.iter().filter(|l| l.kind == LayerKind::Linear).count();
        assert_eq!(convs, 13);
        assert_eq!(fcs, 2);
        // Classifier head width follows the dataset.
        assert_eq!(layers.last().unwrap().shape.n, 100);
    }

    #[test]
    fn vgg16_first_conv_shape() {
        let layers = model_layers(ModelId::Vgg16, DatasetId::Cifar10);
        assert_eq!(layers[0].shape, GemmShape::new(1024, 27, 64));
        assert_eq!(layers[0].timesteps, 4);
    }

    #[test]
    fn resnet18_has_expected_conv_count() {
        let layers = model_layers(ModelId::ResNet18, DatasetId::Cifar10);
        // conv1 + 4 stages × 4 convs + 3 projection shortcuts + fc.
        let convs = layers.iter().filter(|l| l.kind == LayerKind::Conv).count();
        assert_eq!(convs, 1 + 16 + 3);
    }

    #[test]
    fn resnet_downsampling_halves_spatial() {
        let layers = model_layers(ModelId::ResNet18, DatasetId::Cifar10);
        let s2 = layers.iter().find(|l| l.name == "s2b1c1").unwrap();
        assert_eq!(s2.shape.m, 256); // 16×16 output positions
        assert_eq!(s2.shape.k, 576); // 64 × 3 × 3
    }

    #[test]
    fn dvs_models_use_more_timesteps() {
        let layers = model_layers(ModelId::Spikformer, DatasetId::Cifar10Dvs);
        assert!(layers.iter().all(|l| l.timesteps == 8));
        let layers = model_layers(ModelId::Spikformer, DatasetId::Cifar100);
        assert!(layers.iter().all(|l| l.timesteps == 4));
    }

    #[test]
    fn spikformer_has_attention_gemms() {
        let layers = model_layers(ModelId::Spikformer, DatasetId::Cifar100);
        let qk = layers.iter().find(|l| l.name.ends_with("b0_qk")).unwrap();
        assert_eq!(qk.shape, GemmShape::new(64, 384, 64));
        let av = layers.iter().find(|l| l.name.ends_with("b0_av")).unwrap();
        assert_eq!(av.shape, GemmShape::new(64, 64, 384));
    }

    #[test]
    fn sdt_uses_linear_attention() {
        // Spike-driven transformer avoids the quadratic QKᵀ GEMM.
        let layers = model_layers(ModelId::Sdt, DatasetId::Cifar100);
        assert!(!layers.iter().any(|l| l.name.contains("_qk")));
    }

    #[test]
    fn bert_models_have_mlp_blocks() {
        for model in [ModelId::SpikeBert, ModelId::SpikingBert] {
            let layers = model_layers(model, DatasetId::Sst2);
            let ff1 = layers.iter().find(|l| l.name.ends_with("l0_ff1")).unwrap();
            assert_eq!(ff1.shape, GemmShape::new(64, 768, 3072));
        }
    }

    #[test]
    fn every_pair_produces_layers() {
        for (model, dataset) in FIG8_PAIRS {
            let layers = model_layers(model, dataset);
            assert!(!layers.is_empty(), "{model}/{dataset} has no layers");
            assert!(layers.iter().all(|l| l.shape.m > 0 && l.shape.k > 0 && l.shape.n > 0));
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ModelId::Vgg16.to_string(), "VGG16");
        assert_eq!(DatasetId::Cifar10Dvs.to_string(), "CIFAR10-DVS");
    }
}
