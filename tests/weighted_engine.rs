//! Property tests for the weight-compressed calibration engine and the
//! parallel decomposition sweep: the performance work must be invisible in
//! the results.
//!
//! * The weighted (deduplicated) k-means must produce the same
//!   `total_distance` objective — in fact the same centers — as the
//!   unweighted reference sweep for the same seed.
//! * `decompose` under the parallel row path must stay lossless and
//!   deterministic, and the parallel calibration engine must match the
//!   sequential engines byte for byte.

use phi_snn::phi_core::{
    compress_tiles, decompose, hamming_kmeans, hamming_kmeans_unweighted, total_distance,
    CalibrationConfig, CalibrationEngine, Calibrator, KmeansConfig,
};
use phi_snn::snn_core::SpikeMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A pool of width-8 tiles drawn from a few prototypes with bit noise —
/// heavy duplication, like real SNN partitions.
fn tile_pool(n: usize, prototypes: usize, noise: f64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let protos: Vec<u64> = (0..prototypes.max(1)).map(|_| rng.gen::<u64>() & 0xFF).collect();
    (0..n)
        .map(|_| {
            let p = protos[rng.gen_range(0..protos.len())];
            if rng.gen_bool(noise) {
                p ^ (1u64 << rng.gen_range(0..8))
            } else {
                p
            }
        })
        .collect()
}

fn spike_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> SpikeMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeMatrix::from_fn(rows, cols, |_, _| rng.gen_bool(density))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weighted (deduplicated) k-means reaches the same objective as the
    /// unweighted sweep — because it returns the same centers.
    #[test]
    fn weighted_kmeans_objective_matches_unweighted(
        n in 1usize..400,
        prototypes in 1usize..12,
        noise in 0.0f64..0.5,
        clusters in 1usize..40,
        seed in any::<u64>(),
    ) {
        let points = tile_pool(n, prototypes, noise, seed);
        let config = KmeansConfig { clusters, max_iters: 15 };
        let weighted =
            hamming_kmeans(&points, 8, config, &mut StdRng::seed_from_u64(seed ^ 0xBEEF));
        let unweighted = hamming_kmeans_unweighted(
            &points, 8, config, &mut StdRng::seed_from_u64(seed ^ 0xBEEF));
        prop_assert_eq!(
            total_distance(&points, &weighted),
            total_distance(&points, &unweighted)
        );
        prop_assert_eq!(weighted, unweighted);
    }

    /// Compression never changes what the points represent: multiplicities
    /// sum back to the input size and values are sorted-distinct.
    #[test]
    fn compress_tiles_is_a_faithful_histogram(
        n in 0usize..500,
        prototypes in 1usize..10,
        seed in any::<u64>(),
    ) {
        let points = tile_pool(n, prototypes, 0.3, seed);
        let compressed = compress_tiles(&points);
        prop_assert_eq!(compressed.iter().map(|&(_, c)| c as usize).sum::<usize>(), n);
        prop_assert!(compressed.windows(2).all(|w| w[0].0 < w[1].0));
        for &(v, c) in &compressed {
            prop_assert_eq!(points.iter().filter(|&&p| p == v).count() as u64, c);
        }
    }

    /// The parallel row sweep stays lossless and is deterministic: two
    /// decompositions of the same input are identical in every observable.
    #[test]
    fn parallel_decompose_is_lossless_and_deterministic(
        rows in 1usize..80,
        cols in 1usize..100,
        density in 0.0f64..0.6,
        q in 1usize..32,
        seed in any::<u64>(),
    ) {
        let acts = spike_matrix(rows, cols, density, seed);
        let config = CalibrationConfig { q, max_iters: 8, ..Default::default() };
        let patterns =
            Calibrator::new(config).calibrate(&acts, &mut StdRng::seed_from_u64(seed));
        let a = decompose(&acts, &patterns);
        let b = decompose(&acts, &patterns);
        prop_assert!(a.verify_lossless(&acts));
        prop_assert_eq!(a.l2_nnz(), b.l2_nnz());
        prop_assert_eq!(a.stats(), b.stats());
        for r in 0..rows {
            prop_assert_eq!(a.l2_row(r), b.l2_row(r));
            for part in 0..a.num_partitions() {
                prop_assert_eq!(a.l1_index(r, part), b.l1_index(r, part));
            }
        }
    }

    /// All three calibration engines agree byte for byte on arbitrary
    /// activation matrices.
    #[test]
    fn calibration_engines_agree(
        rows in 1usize..120,
        cols in 1usize..80,
        density in 0.0f64..0.6,
        q in 1usize..48,
        seed in any::<u64>(),
    ) {
        let acts = spike_matrix(rows, cols, density, seed);
        let calibrate = |engine| {
            let config = CalibrationConfig { q, max_iters: 10, engine, ..Default::default() };
            Calibrator::new(config).calibrate(&acts, &mut StdRng::seed_from_u64(seed ^ 0xCAFE))
        };
        let reference = calibrate(CalibrationEngine::Reference);
        let weighted = calibrate(CalibrationEngine::Weighted);
        let parallel = calibrate(CalibrationEngine::Parallel);
        prop_assert_eq!(&reference, &weighted);
        prop_assert_eq!(&weighted, &parallel);
    }
}
