//! End-to-end integration: workload generation → calibration → PAFT →
//! simulation → reporting, plus the real-training PAFT path.

use phi_snn::phi_core::{decompose, CalibrationConfig, Calibrator, PaftRegularizer};
use phi_snn::pipeline::{run_phi_workload, workload_stats, PipelineConfig};
use phi_snn::snn_core::dataset::{prototype_dataset, split, PrototypeConfig};
use phi_snn::snn_core::network::SnnNetwork;
use phi_snn::snn_core::train::{evaluate, record_activations, train, SgdConfig};
use phi_snn::snn_core::{LifConfig, SpikeMatrix};
use phi_snn::snn_workloads::{DatasetId, ModelId, WorkloadConfig, FIG8_PAIRS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_pipeline() -> PipelineConfig {
    PipelineConfig {
        calibration: CalibrationConfig { q: 32, max_iters: 6, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn every_fig8_pair_runs_end_to_end() {
    for (model, dataset) in FIG8_PAIRS {
        let workload = WorkloadConfig::new(model, dataset)
            .with_max_rows(48)
            .with_calibration_rows(64)
            .generate();
        let report = run_phi_workload(&workload, &fast_pipeline());
        assert_eq!(report.layers.len(), workload.layers.len(), "{model}/{dataset}");
        assert!(report.total_cycles() > 0.0, "{model}/{dataset}");
        assert!(report.total_energy().total_j() > 0.0, "{model}/{dataset}");
        assert!(report.total_stats().element_density() > 0.0, "{model}/{dataset}");
    }
}

#[test]
fn workload_stats_reproduce_table4_shape() {
    // At reduced scale, the qualitative Table 4 shape must hold: clustered
    // SNN activations give large speedups over bit sparsity, with L1
    // density close to bit density.
    let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10)
        .with_max_rows(256)
        .with_calibration_rows(256)
        .generate();
    let stats = workload_stats(&workload, &fast_pipeline());
    assert!(
        stats.speedup_over_bit() > 2.0,
        "VGG16 should gain at least 2x over bit sparsity, got {:.2}",
        stats.speedup_over_bit()
    );
    assert!(
        stats.l1_density() > 0.5 * stats.bit_density(),
        "patterns should carry most of the ones (L1 {:.3} vs bit {:.3})",
        stats.l1_density(),
        stats.bit_density()
    );
    assert!(stats.l2_pos_density() >= stats.l2_neg_density(), "+1 corrections dominate");
}

#[test]
fn clustered_beats_random_at_equal_density() {
    // §5.6: patterns exist even in random data but clustered SNN data gains
    // more.
    let mut rng = StdRng::seed_from_u64(5);
    let workload =
        WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar100).with_max_rows(256).generate();
    let clustered = workload_stats(&workload, &fast_pipeline());
    let density = clustered.bit_density();
    let random = SpikeMatrix::random(512, 512, density, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig { q: 32, max_iters: 6, ..Default::default() })
        .calibrate(&random, &mut rng);
    let random_stats = decompose(&random, &patterns).stats();
    assert!(
        clustered.speedup_over_bit() > random_stats.speedup_over_bit(),
        "clustered {:.2}x must beat random {:.2}x",
        clustered.speedup_over_bit(),
        random_stats.speedup_over_bit()
    );
}

#[test]
fn real_snn_paft_reduces_density_without_collapse() {
    let mut rng = StdRng::seed_from_u64(99);
    let data = prototype_dataset(
        PrototypeConfig { features: 32, classes: 3, samples: 240, ..Default::default() },
        &mut rng,
    );
    let (train_set, test_set) = split(&data, 0.25);
    let mut net = SnnNetwork::new(32, &[48], 3, 4, LifConfig::default(), &mut rng);
    let sgd = SgdConfig { lr: 0.05, momentum: 0.9, batch_size: 16 };
    train(&mut net, &train_set, &sgd, 10, None, &mut rng).expect("base training");
    let acc_before = evaluate(&net, &test_set).expect("eval");

    let measure = |net: &SnnNetwork| -> f64 {
        let acts = record_activations(net, &test_set).expect("record");
        let spikes = SpikeMatrix::from_matrix_threshold(&acts[0], 0.5);
        let mut cal_rng = StdRng::seed_from_u64(1);
        let patterns =
            Calibrator::new(CalibrationConfig { q: 16, max_iters: 8, ..Default::default() })
                .calibrate(&spikes, &mut cal_rng);
        decompose(&spikes, &patterns).stats().element_density()
    };
    let density_before = measure(&net);

    let acts = record_activations(&net, &train_set).expect("record");
    let spikes = SpikeMatrix::from_matrix_threshold(&acts[0], 0.5);
    let patterns = Calibrator::new(CalibrationConfig { q: 16, max_iters: 8, ..Default::default() })
        .calibrate(&spikes, &mut rng);
    let reg = PaftRegularizer::new(vec![patterns], vec![3], 3e-4);
    let fine = SgdConfig { lr: 0.01, momentum: 0.9, batch_size: 16 };
    train(&mut net, &train_set, &fine, 4, Some(&reg), &mut rng).expect("paft");

    let density_after = measure(&net);
    let acc_after = evaluate(&net, &test_set).expect("eval");

    assert!(
        density_after <= density_before * 1.05,
        "PAFT must not inflate density: {density_before:.4} -> {density_after:.4}"
    );
    assert!(
        acc_after >= acc_before - 0.15,
        "PAFT must not collapse accuracy: {acc_before:.3} -> {acc_after:.3}"
    );
}

#[test]
fn reports_aggregate_consistently() {
    let workload =
        WorkloadConfig::new(ModelId::Sdt, DatasetId::Cifar100).with_max_rows(64).generate();
    let report = run_phi_workload(&workload, &fast_pipeline());
    let sum: f64 = report.layers.iter().map(|l| l.cycles).sum();
    assert!((report.total_cycles() - sum).abs() < 1e-6);
    let ops: f64 = report.layers.iter().map(|l| l.bit_ops).sum();
    assert!((report.total_ops() - ops).abs() < 1e-6);
    // Throughput and efficiency derive from the same totals.
    let freq = 500e6;
    let gops = report.throughput_gops(freq);
    assert!((gops - ops / (sum / freq) / 1e9).abs() / gops < 1e-9);
}
