//! Cross-crate property tests: the Phi decomposition must be lossless and
//! functionally exact for *arbitrary* activations, pattern sets, and
//! shapes — not just the distributions the generator produces.

use phi_snn::phi_core::{
    decompose, phi_matmul, CalibrationConfig, Calibrator, LayerPatterns, Pattern, PatternSet,
    PwpTable,
};
use phi_snn::snn_core::{Matrix, SpikeMatrix};
use proptest::prelude::*;

/// Strategy: a random spike matrix with rows/cols/density drawn broadly.
fn spike_matrix() -> impl Strategy<Value = SpikeMatrix> {
    (1usize..40, 1usize..70, 0.0f64..0.9, any::<u64>()).prop_map(|(rows, cols, density, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SpikeMatrix::from_fn(rows, cols, |_, _| rng.gen_bool(density))
    })
}

/// Strategy: arbitrary (possibly adversarial) pattern sets for a width.
fn patterns_for(cols: usize, k: usize, seed: u64) -> LayerPatterns {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let parts = cols.div_ceil(k);
    let sets = (0..parts)
        .map(|_| {
            let q = rng.gen_range(0..12);
            let mask = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
            PatternSet::new(k, (0..q).map(|_| Pattern::new(rng.gen::<u64>() & mask, k)).collect())
        })
        .collect();
    LayerPatterns::new(k, sets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// L1 + L2 must equal the original for any matrix and pattern set.
    #[test]
    fn decomposition_is_always_lossless(
        acts in spike_matrix(),
        k in prop::sample::select(vec![4usize, 8, 16, 32]),
        seed in any::<u64>(),
    ) {
        let patterns = patterns_for(acts.cols(), k, seed);
        let d = decompose(&acts, &patterns);
        prop_assert!(d.verify_lossless(&acts));
    }

    /// L2 nonzeros never exceed the raw bit count (the assignment rule only
    /// accepts strictly better patterns).
    #[test]
    fn l2_never_denser_than_bits(
        acts in spike_matrix(),
        seed in any::<u64>(),
    ) {
        let patterns = patterns_for(acts.cols(), 16, seed);
        let d = decompose(&acts, &patterns);
        prop_assert!(d.l2_nnz() <= acts.nnz() as u64);
    }

    /// The counter identity bit = L1 − L2⁻ + L2⁺ holds exactly.
    #[test]
    fn ones_balance_identity(
        acts in spike_matrix(),
        seed in any::<u64>(),
    ) {
        let patterns = patterns_for(acts.cols(), 8, seed);
        let s = decompose(&acts, &patterns).stats();
        prop_assert_eq!(s.bit_nnz + s.l2_neg, s.l1_ones + s.l2_pos);
    }

    /// The functional Phi GEMM equals the dense spike GEMM.
    #[test]
    fn phi_gemm_matches_dense(
        acts in spike_matrix(),
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let patterns = patterns_for(acts.cols(), 16, seed);
        let weights = Matrix::random(acts.cols(), n, &mut rng);
        let d = decompose(&acts, &patterns);
        let pwp = PwpTable::new(&patterns, &weights).expect("pwp shapes");
        let phi = phi_matmul(&d, &pwp, &weights).expect("phi gemm");
        let dense = acts.spike_matmul(&weights).expect("dense gemm");
        let diff = phi.max_abs_diff(&dense).expect("same shape");
        prop_assert!(diff < 1e-3, "diff {}", diff);
    }

    /// Calibrated (rather than adversarial) patterns also stay lossless and
    /// never increase L2 beyond bit sparsity.
    #[test]
    fn calibrated_decomposition_is_lossless(
        acts in spike_matrix(),
        q in 1usize..40,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = CalibrationConfig { q, max_iters: 8, ..Default::default() };
        let patterns = Calibrator::new(config).calibrate(&acts, &mut rng);
        let d = decompose(&acts, &patterns);
        prop_assert!(d.verify_lossless(&acts));
        prop_assert!(d.l2_nnz() <= acts.nnz() as u64);
    }

    /// Reconstruction is identical regardless of partition width.
    #[test]
    fn losslessness_is_width_independent(
        acts in spike_matrix(),
        seed in any::<u64>(),
    ) {
        for k in [4usize, 16, 64] {
            let patterns = patterns_for(acts.cols(), k, seed.wrapping_add(k as u64));
            let d = decompose(&acts, &patterns);
            prop_assert!(d.verify_lossless(&acts), "width {}", k);
        }
    }
}
