//! Cross-crate consistency of the cycle simulators: Phi and the baselines
//! must respond to activation statistics the way the paper's evaluation
//! depends on.

use phi_snn::phi_accel::{PhiConfig, PhiSimulator};
use phi_snn::phi_core::{CalibrationConfig, Calibrator};
use phi_snn::pipeline::{run_baseline_workload, run_phi_workload, PipelineConfig};
use phi_snn::snn_baselines::{Accelerator, Ptb, Sato, SpikingEyeriss, SpinalFlow, Stellar};
use phi_snn::snn_core::{GemmShape, SpikeMatrix};
use phi_snn::snn_workloads::{DatasetId, ModelId, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_workload(model: ModelId, dataset: DatasetId) -> phi_snn::snn_workloads::Workload {
    WorkloadConfig::new(model, dataset).with_max_rows(96).with_calibration_rows(128).generate()
}

fn fast_pipeline() -> PipelineConfig {
    PipelineConfig {
        calibration: CalibrationConfig { q: 32, max_iters: 6, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn phi_outperforms_every_baseline_on_clustered_workloads() {
    let workload = small_workload(ModelId::Vgg16, DatasetId::Cifar10);
    let pipeline = fast_pipeline();
    let freq = pipeline.accelerator.frequency_hz;
    let phi = run_phi_workload(&workload, &pipeline);
    let phi_runtime = phi.runtime_s(freq);
    let baselines: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SpikingEyeriss::default()),
        Box::new(Ptb::default()),
        Box::new(Sato::default()),
        Box::new(SpinalFlow::default()),
        Box::new(Stellar::default()),
    ];
    for baseline in baselines {
        let report = run_baseline_workload(baseline.as_ref(), &workload);
        assert!(
            phi_runtime < report.runtime_s(freq),
            "Phi ({phi_runtime:.3e}s) should beat {} ({:.3e}s)",
            baseline.name(),
            report.runtime_s(freq)
        );
    }
}

#[test]
fn phi_energy_efficiency_beats_baselines() {
    let workload = small_workload(ModelId::Vgg16, DatasetId::Cifar100);
    let pipeline = fast_pipeline();
    let phi = run_phi_workload(&workload, &pipeline);
    let phi_eff = phi.gops_per_joule();
    for baseline in [&SpikingEyeriss::default() as &dyn Accelerator, &Stellar::default()] {
        let report = run_baseline_workload(baseline, &workload);
        assert!(
            phi_eff > report.gops_per_joule(),
            "Phi ({phi_eff:.1} GOP/J) should beat {} ({:.1} GOP/J)",
            baseline.name(),
            report.gops_per_joule()
        );
    }
}

#[test]
fn phi_compute_cycles_grow_with_density() {
    let sim = PhiSimulator::new(PhiConfig::default());
    let mut rng = StdRng::seed_from_u64(31);
    let mut previous = 0.0f64;
    for density in [0.05, 0.15, 0.3, 0.5] {
        let acts = SpikeMatrix::random(256, 128, density, &mut rng);
        let patterns =
            Calibrator::new(CalibrationConfig { q: 32, max_iters: 6, ..Default::default() })
                .calibrate(&acts, &mut rng);
        let report = sim.run_layer(&acts, &patterns, GemmShape::new(256, 128, 64), 1.0);
        assert!(
            report.breakdown.compute >= previous,
            "compute cycles must be monotone in density ({density})"
        );
        previous = report.breakdown.compute;
    }
}

#[test]
fn paft_speeds_up_phi() {
    let workload = small_workload(ModelId::Spikformer, DatasetId::Cifar100);
    let base = run_phi_workload(&workload, &fast_pipeline());
    let paft = run_phi_workload(&workload, &fast_pipeline().with_paft(0.7));
    assert!(
        paft.total_cycles() <= base.total_cycles(),
        "PAFT ({:.3e}) should not be slower than base ({:.3e})",
        paft.total_cycles(),
        base.total_cycles()
    );
}

#[test]
fn compression_and_prefetch_reduce_traffic() {
    let workload = small_workload(ModelId::ResNet18, DatasetId::Cifar100);
    let report = run_phi_workload(&workload, &fast_pipeline());
    let t = report.total_traffic();
    assert!(t.act_compressed < t.act_uncompressed, "compact packs must shrink traffic");
    assert!(t.pwp_prefetch <= t.pwp_no_prefetch, "prefetch must not add traffic");
    assert!(t.pwp_no_prefetch > 0.0, "PWPs must move some bytes");
    // With the paper's full q = 128 > k = 16, the complete PWP set dwarfs
    // the raw weights (the 9x of Fig. 12b); at this test's q = 32 it is
    // merely comparable, so only the ordering is asserted here — the 9x
    // ratio is pinned in `phi_accel::traffic` unit tests.
}

#[test]
fn disabling_compress_increases_total_bytes() {
    let workload = small_workload(ModelId::ResNet18, DatasetId::Cifar10);
    let base = fast_pipeline();
    let mut no_compress = fast_pipeline();
    no_compress.accelerator.compress = false;
    let t_base = run_phi_workload(&workload, &base).total_traffic();
    let bytes_base = t_base.total_bytes(&base.accelerator);
    let t_off = run_phi_workload(&workload, &no_compress).total_traffic();
    let bytes_off = t_off.total_bytes(&no_compress.accelerator);
    assert!(bytes_off > bytes_base);
}

#[test]
fn baseline_roster_reports_consistent_ops() {
    // All accelerators must agree on the OP count — it is a property of the
    // workload, not the machine.
    let workload = small_workload(ModelId::Sdt, DatasetId::Cifar100);
    let reference = run_baseline_workload(&SpikingEyeriss::default(), &workload).total_ops();
    for baseline in [
        &Ptb::default() as &dyn Accelerator,
        &Sato::default(),
        &SpinalFlow::default(),
        &Stellar::default(),
    ] {
        let ops = run_baseline_workload(baseline, &workload).total_ops();
        assert!((ops - reference).abs() / reference < 1e-9, "{} disagrees on ops", baseline.name());
    }
    let phi = run_phi_workload(&workload, &fast_pipeline());
    assert!((phi.total_ops() - reference).abs() / reference < 1e-9, "Phi disagrees on ops");
}

#[test]
fn wider_outputs_scale_cycles() {
    let sim = PhiSimulator::new(PhiConfig::default());
    let mut rng = StdRng::seed_from_u64(77);
    let acts = SpikeMatrix::random(256, 64, 0.2, &mut rng);
    let patterns = Calibrator::new(CalibrationConfig { q: 16, max_iters: 6, ..Default::default() })
        .calibrate(&acts, &mut rng);
    let narrow = sim.run_layer(&acts, &patterns, GemmShape::new(256, 64, 32), 1.0);
    let wide = sim.run_layer(&acts, &patterns, GemmShape::new(256, 64, 128), 1.0);
    assert!(
        (wide.breakdown.compute - 4.0 * narrow.breakdown.compute).abs() / wide.breakdown.compute
            < 1e-9,
        "4x output width must mean 4x compute tiles"
    );
}
