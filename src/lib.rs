//! # phi-snn — reproduction of *Phi: Leveraging Pattern-based Hierarchical
//! Sparsity for High-Efficiency Spiking Neural Networks* (ISCA 2025)
//!
//! This facade crate re-exports the whole workspace and provides the
//! [`pipeline`] module — the calibrate → (optionally PAFT-align) →
//! decompose → simulate flow that every example and experiment binary
//! drives.
//!
//! Crate map:
//!
//! * [`phi_core`] — the paper's contribution: patterns, Hamming k-means
//!   calibration, the lossless L1/L2 decomposition, PWPs, PAFT;
//! * [`snn_core`] — SNN substrate: bit-packed spike matrices, LIF neurons,
//!   surrogate-gradient training;
//! * [`snn_workloads`] — model zoo + calibrated activation generators;
//! * [`phi_accel`] — the cycle-level Phi architecture simulator;
//! * [`snn_baselines`] — Eyeriss/SpinalFlow/SATO/PTB/Stellar models;
//! * [`phi_analysis`] — t-SNE, cluster metrics, table output;
//! * [`phi_runtime`] — compile-time artifacts + the batched serving engine.
//!
//! # Quickstart
//!
//! ```
//! use phi_snn::pipeline::{run_phi_workload, PipelineConfig};
//! use snn_workloads::{DatasetId, ModelId, WorkloadConfig};
//!
//! let workload = WorkloadConfig::new(ModelId::Vgg16, DatasetId::Cifar10)
//!     .with_max_rows(128)
//!     .generate();
//! let report = run_phi_workload(&workload, &PipelineConfig::fast());
//! assert!(report.total_cycles() > 0.0);
//! ```

pub use phi_accel;
pub use phi_analysis;
pub use phi_core;
pub use phi_runtime;
pub use snn_baselines;
pub use snn_core;
pub use snn_workloads;

pub mod pipeline {
    //! The end-to-end Phi flow shared by examples, tests, and experiment
    //! binaries.

    use phi_accel::{LayerReport, ModelReport, PhiConfig, PhiSimulator};
    use phi_core::{
        decompose, AlignmentModel, CalibrationConfig, Calibrator, LayerPatterns, SparsityStats,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rayon::prelude::*;
    use snn_baselines::{Accelerator, BaselineModelReport};
    use snn_workloads::{LayerWorkload, Workload};

    /// Configuration of the full pipeline.
    #[derive(Debug, Clone)]
    pub struct PipelineConfig {
        /// Calibration settings (pattern width `k`, count `q`, …).
        pub calibration: CalibrationConfig,
        /// Architecture settings.
        pub accelerator: PhiConfig,
        /// Optional PAFT alignment strength in `[0, 1]` (`None` = no PAFT,
        /// the paper's "Phi w/o FT").
        pub paft: Option<f64>,
        /// RNG seed for calibration and alignment.
        pub seed: u64,
    }

    impl Default for PipelineConfig {
        fn default() -> Self {
            PipelineConfig {
                calibration: CalibrationConfig::default(),
                accelerator: PhiConfig::default(),
                paft: None,
                seed: 7,
            }
        }
    }

    impl PipelineConfig {
        /// A reduced-q configuration for fast tests and doc examples.
        pub fn fast() -> Self {
            PipelineConfig {
                calibration: CalibrationConfig { q: 16, max_rows: 512, ..Default::default() },
                ..Default::default()
            }
        }

        /// Enables PAFT with the given alignment strength.
        pub fn with_paft(mut self, strength: f64) -> Self {
            self.paft = Some(strength);
            self
        }
    }

    /// Calibrates patterns for one layer from its calibration dump.
    pub fn calibrate_layer(
        layer: &LayerWorkload,
        config: &CalibrationConfig,
        seed: u64,
    ) -> LayerPatterns {
        let mut rng = StdRng::seed_from_u64(seed);
        Calibrator::new(*config).calibrate(&layer.calibration, &mut rng)
    }

    /// Calibrates, optionally PAFT-aligns, and decomposes one layer — the
    /// per-layer front half of the pipeline, shared by [`run_phi_workload`]
    /// and [`workload_stats`].
    ///
    /// Deterministic in `(layer, config, index)`: the layer's RNG streams
    /// are seeded from `config.seed` and the layer index alone, so layers
    /// can be processed in any order (or in parallel) with identical
    /// results.
    fn prepare_layer(
        layer: &LayerWorkload,
        config: &PipelineConfig,
        index: usize,
    ) -> (snn_core::SpikeMatrix, phi_core::Decomposition) {
        let seed = config.seed.wrapping_add(index as u64);
        let patterns = calibrate_layer(layer, &config.calibration, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11A);
        let acts = match config.paft {
            Some(strength) => {
                AlignmentModel::new(strength).align(&layer.activations, &patterns, &mut rng)
            }
            None => layer.activations.clone(),
        };
        let decomp = decompose(&acts, &patterns);
        (acts, decomp)
    }

    /// Runs the Phi simulator over a generated workload: per layer,
    /// calibrate on the calibration split, optionally PAFT-align the
    /// runtime activations, then simulate.
    ///
    /// Layers are independent (per-layer RNG seeds derive from the layer
    /// index), so they are processed in parallel; reports are collected in
    /// layer order, making the output identical to the sequential walk.
    pub fn run_phi_workload(workload: &Workload, config: &PipelineConfig) -> ModelReport {
        let sim = PhiSimulator::new(config.accelerator.clone());
        let indexed: Vec<(usize, &LayerWorkload)> = workload.layers.iter().enumerate().collect();
        let layers: Vec<LayerReport> = indexed
            .into_par_iter()
            .map(|(i, layer)| {
                let (acts, decomp) = prepare_layer(layer, config, i);
                let mut report = sim.run_decomposed(
                    &acts,
                    &decomp,
                    layer.spec.shape,
                    layer.row_scale,
                    &layer.spec.name,
                );
                report.name = layer.spec.name.clone();
                report
            })
            .collect();
        PhiSimulator::aggregate(layers)
    }

    /// Runs a baseline accelerator over the same workload. Accepts trait
    /// objects so callers can iterate over the Table 2 roster.
    pub fn run_baseline_workload(
        accelerator: &(impl Accelerator + ?Sized),
        workload: &Workload,
    ) -> BaselineModelReport {
        let reports = workload
            .layers
            .iter()
            .map(|l| accelerator.run_layer(&l.activations, l.spec.shape, l.row_scale))
            .collect();
        BaselineModelReport::from_layers(accelerator.name(), reports)
    }

    /// Calibrates and decomposes every layer, returning the merged sparsity
    /// statistics (one Table 4 row). Layers run in parallel, like
    /// [`run_phi_workload`].
    pub fn workload_stats(workload: &Workload, config: &PipelineConfig) -> SparsityStats {
        let indexed: Vec<(usize, &LayerWorkload)> = workload.layers.iter().enumerate().collect();
        let all: Vec<SparsityStats> = indexed
            .into_par_iter()
            .map(|(i, layer)| prepare_layer(layer, config, i).1.stats())
            .collect();
        SparsityStats::merge_all(all.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::pipeline::*;
    use snn_workloads::{DatasetId, ModelId, WorkloadConfig};

    fn tiny_workload() -> snn_workloads::Workload {
        WorkloadConfig::new(ModelId::ResNet18, DatasetId::Cifar10)
            .with_max_rows(64)
            .with_calibration_rows(128)
            .generate()
    }

    #[test]
    fn phi_pipeline_produces_report() {
        let w = tiny_workload();
        let r = run_phi_workload(&w, &PipelineConfig::fast());
        assert_eq!(r.layers.len(), w.layers.len());
        assert!(r.total_cycles() > 0.0);
        assert!(r.gops_per_joule() > 0.0);
    }

    #[test]
    fn paft_reduces_element_density() {
        let w = tiny_workload();
        let base = workload_stats(&w, &PipelineConfig::fast());
        let paft = workload_stats(&w, &PipelineConfig::fast().with_paft(0.6));
        assert!(
            paft.element_density() < base.element_density(),
            "PAFT {:.4} should be below base {:.4}",
            paft.element_density(),
            base.element_density()
        );
    }

    #[test]
    fn baseline_pipeline_produces_report() {
        let w = tiny_workload();
        let r = run_baseline_workload(&snn_baselines::SpikingEyeriss::default(), &w);
        assert_eq!(r.layers.len(), w.layers.len());
        assert!(r.total_cycles() > 0.0);
    }
}
